//! IPv4 CIDR prefixes.

use crate::{format_ipv4, parse_ipv4};
use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};
use std::fmt;
use std::str::FromStr;

/// An IPv4 CIDR prefix, stored canonically: all bits below the prefix length
/// are zero.
///
/// Construction through [`Prefix::new`] masks the address, so two `Prefix`
/// values are `==` iff they denote the same address block.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Prefix {
    addr: u32,
    len: u8,
}

/// Error returned when parsing a prefix from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixParseError(pub String);

impl fmt::Display for PrefixParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid prefix: {}", self.0)
    }
}

impl std::error::Error for PrefixParseError {}

impl Prefix {
    /// Creates a prefix, masking `addr` down to `len` bits.
    ///
    /// # Panics
    /// Panics if `len > 32`.
    #[inline]
    pub fn new(addr: u32, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} > 32");
        Prefix {
            addr: addr & Self::mask(len),
            len,
        }
    }

    /// The /0 prefix covering the entire IPv4 space.
    pub const DEFAULT: Prefix = Prefix { addr: 0, len: 0 };

    /// A /32 host route for `addr`.
    #[inline]
    pub fn host(addr: u32) -> Self {
        Prefix { addr, len: 32 }
    }

    /// The network address (low end) of the prefix.
    #[inline]
    pub fn addr(self) -> u32 {
        self.addr
    }

    /// The prefix length in bits.
    #[inline]
    pub fn len(self) -> u8 {
        self.len
    }

    /// True only for the /0 default prefix (clippy insists `len` needs it).
    #[inline]
    pub fn is_empty(self) -> bool {
        self.len == 0
    }

    /// The netmask for a given length: `mask(24) == 0xffff_ff00`.
    #[inline]
    pub fn mask(len: u8) -> u32 {
        debug_assert!(len <= 32);
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// The number of addresses covered: `2^(32-len)`.
    #[inline]
    pub fn size(self) -> u64 {
        1u64 << (32 - self.len)
    }

    /// The highest address covered by the prefix.
    #[inline]
    pub fn last_addr(self) -> u32 {
        self.addr | !Self::mask(self.len)
    }

    /// Does this prefix cover `addr`?
    #[inline]
    pub fn contains(self, addr: u32) -> bool {
        addr & Self::mask(self.len) == self.addr
    }

    /// Does this prefix cover every address of `other`?
    #[inline]
    pub fn covers(self, other: Prefix) -> bool {
        self.len <= other.len && self.contains(other.addr)
    }

    /// Do the two prefixes share any address?
    #[inline]
    pub fn overlaps(self, other: Prefix) -> bool {
        self.covers(other) || other.covers(self)
    }

    /// The immediate parent (one bit shorter), or `None` for /0.
    #[inline]
    pub fn parent(self) -> Option<Prefix> {
        if self.len == 0 {
            None
        } else {
            Some(Prefix::new(self.addr, self.len - 1))
        }
    }

    /// Splits into the two children one bit longer, or `None` for /32.
    #[inline]
    pub fn children(self) -> Option<(Prefix, Prefix)> {
        if self.len == 32 {
            None
        } else {
            let l = self.len + 1;
            let hi_bit = 1u32 << (32 - l);
            Some((
                Prefix::new(self.addr, l),
                Prefix::new(self.addr | hi_bit, l),
            ))
        }
    }

    /// The /24 prefix containing `addr` — bdrmapIT's reallocated-prefix
    /// heuristic (§6.1.2) matches customer reallocations at /24 granularity.
    #[inline]
    pub fn slash24_of(addr: u32) -> Prefix {
        Prefix::new(addr, 24)
    }

    /// Iterates over the sub-prefixes of length `sublen` inside this prefix.
    ///
    /// # Panics
    /// Panics if `sublen < self.len()`.
    pub fn subnets(self, sublen: u8) -> impl Iterator<Item = Prefix> {
        assert!(
            sublen >= self.len,
            "sublen {sublen} < prefix len {}",
            self.len
        );
        assert!(sublen <= 32);
        let count = 1u64 << (sublen - self.len);
        let step = 1u64 << (32 - sublen);
        let base = self.addr as u64;
        (0..count).map(move |i| Prefix::new((base + i * step) as u32, sublen))
    }

    /// Returns the value of bit `i` of the network address, where bit 0 is
    /// the most significant. Used by the radix trie.
    #[inline]
    pub fn bit(self, i: u8) -> bool {
        debug_assert!(i < 32);
        self.addr & (1u32 << (31 - i)) != 0
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", format_ipv4(self.addr), self.len)
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl FromStr for Prefix {
    type Err = PrefixParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (ip, len) = s
            .split_once('/')
            .ok_or_else(|| PrefixParseError(s.to_string()))?;
        let addr = parse_ipv4(ip).ok_or_else(|| PrefixParseError(s.to_string()))?;
        let len: u8 = len.parse().map_err(|_| PrefixParseError(s.to_string()))?;
        if len > 32 {
            return Err(PrefixParseError(s.to_string()));
        }
        Ok(Prefix::new(addr, len))
    }
}

impl Serialize for Prefix {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_str(self)
    }
}

impl<'de> Deserialize<'de> for Prefix {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        s.parse().map_err(|e: PrefixParseError| D::Error::custom(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn canonical_masking() {
        assert_eq!(Prefix::new(0x0a0a0a0a, 8), p("10.0.0.0/8"));
        assert_eq!(p("10.1.2.3/24").addr(), parse_ipv4("10.1.2.0").unwrap());
    }

    #[test]
    fn display_roundtrip() {
        for s in ["0.0.0.0/0", "10.0.0.0/8", "192.168.1.0/24", "1.2.3.4/32"] {
            assert_eq!(p(s).to_string(), s);
        }
    }

    #[test]
    fn parse_errors() {
        for bad in ["10.0.0.0", "10.0.0.0/33", "10.0.0/8", "/8", "10.0.0.0/x"] {
            assert!(bad.parse::<Prefix>().is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn containment() {
        let net = p("10.0.0.0/8");
        assert!(net.contains(parse_ipv4("10.255.255.255").unwrap()));
        assert!(!net.contains(parse_ipv4("11.0.0.0").unwrap()));
        assert!(net.covers(p("10.1.0.0/16")));
        assert!(!p("10.1.0.0/16").covers(net));
        assert!(net.overlaps(p("10.1.0.0/16")));
        assert!(!net.overlaps(p("11.0.0.0/8")));
        assert!(Prefix::DEFAULT.covers(net));
    }

    #[test]
    fn size_and_bounds() {
        assert_eq!(p("10.0.0.0/24").size(), 256);
        assert_eq!(p("10.0.0.0/32").size(), 1);
        assert_eq!(Prefix::DEFAULT.size(), 1u64 << 32);
        assert_eq!(
            p("10.0.0.0/24").last_addr(),
            parse_ipv4("10.0.0.255").unwrap()
        );
    }

    #[test]
    fn family_ops() {
        let net = p("10.0.0.0/24");
        assert_eq!(net.parent().unwrap(), p("10.0.0.0/23"));
        let (a, b) = net.children().unwrap();
        assert_eq!(a, p("10.0.0.0/25"));
        assert_eq!(b, p("10.0.0.128/25"));
        assert!(p("1.2.3.4/32").children().is_none());
        assert!(Prefix::DEFAULT.parent().is_none());
    }

    #[test]
    fn subnets_enumeration() {
        let subs: Vec<_> = p("10.0.0.0/22").subnets(24).collect();
        assert_eq!(
            subs,
            vec![
                p("10.0.0.0/24"),
                p("10.0.1.0/24"),
                p("10.0.2.0/24"),
                p("10.0.3.0/24")
            ]
        );
        assert_eq!(p("10.0.0.0/24").subnets(24).count(), 1);
    }

    #[test]
    fn bit_indexing() {
        let net = p("128.0.0.0/1");
        assert!(net.bit(0));
        let net = p("0.0.0.1/32");
        assert!(net.bit(31));
        assert!(!net.bit(30));
    }

    #[test]
    fn serde_as_string() {
        let net = p("10.0.0.0/8");
        let json = serde_json::to_string(&net).unwrap();
        assert_eq!(json, "\"10.0.0.0/8\"");
        let back: Prefix = serde_json::from_str(&json).unwrap();
        assert_eq!(back, net);
    }
}
