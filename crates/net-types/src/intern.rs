//! Dense interning of IPv4 addresses.
//!
//! The pipeline's phase-1 graph build touches every responsive traceroute
//! hop several times (dest-set recording, link extraction, predecessor
//! tracking). Keying those accesses by the 32-bit address through a hash map
//! means hashing and probing per touch; interning every observed address
//! into a dense `u32` id once turns all downstream bookkeeping into plain
//! array indexing and sorted-vector merges.
//!
//! An [`AddrInterner`] is immutable after construction and assigns ids in
//! ascending address order, so the id space is *canonical*: any two builds
//! over the same observed address set — regardless of thread count or the
//! order shards delivered their observations — produce the identical
//! mapping. That property is what lets the parallel graph build merge
//! shard-local observation vectors with a deterministic sort instead of a
//! coordination step.

/// An immutable IPv4 → dense-id interner.
///
/// Ids are `0..len()`, assigned in ascending address order. Lookups are
/// branch-light binary searches over one sorted `Vec<u32>` — no hashing, no
/// per-process seed, bit-identical behaviour on every platform.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AddrInterner {
    addrs: Vec<u32>,
}

impl AddrInterner {
    /// Builds the interner from any iterator of addresses; duplicates are
    /// collapsed. The id of an address is its rank in the deduplicated
    /// ascending order.
    pub fn from_addrs<I: IntoIterator<Item = u32>>(addrs: I) -> AddrInterner {
        let mut addrs: Vec<u32> = addrs.into_iter().collect();
        addrs.sort_unstable();
        addrs.dedup();
        AddrInterner { addrs }
    }

    /// Builds from a vector that is already sorted and deduplicated
    /// (debug-checked), skipping the sort.
    pub fn from_sorted(addrs: Vec<u32>) -> AddrInterner {
        debug_assert!(addrs.windows(2).all(|w| w[0] < w[1]), "not sorted+dedup");
        AddrInterner { addrs }
    }

    /// The dense id of `addr`, if it was interned.
    #[inline]
    pub fn id(&self, addr: u32) -> Option<u32> {
        self.addrs.binary_search(&addr).ok().map(|i| i as u32)
    }

    /// The address carrying dense id `id`.
    ///
    /// # Panics
    /// Panics if `id >= len()`.
    #[inline]
    pub fn addr(&self, id: u32) -> u32 {
        self.addrs[id as usize]
    }

    /// Number of interned addresses (the id space is `0..len()`).
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// True when nothing was interned.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// All interned addresses in id order (index == id).
    pub fn addrs(&self) -> &[u32] {
        &self.addrs
    }

    /// Iterates `(id, addr)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.addrs.iter().enumerate().map(|(i, &a)| (i as u32, a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ascending_ranks() {
        let it = AddrInterner::from_addrs([30u32, 10, 20, 10]);
        assert_eq!(it.len(), 3);
        assert_eq!(it.id(10), Some(0));
        assert_eq!(it.id(20), Some(1));
        assert_eq!(it.id(30), Some(2));
        assert_eq!(it.id(25), None);
        assert_eq!(it.addr(2), 30);
        assert_eq!(it.addrs(), &[10, 20, 30]);
    }

    #[test]
    fn insertion_order_never_matters() {
        let a = AddrInterner::from_addrs([5u32, 1, 9, 3]);
        let b = AddrInterner::from_addrs([9u32, 3, 5, 1, 1, 9]);
        assert_eq!(a, b);
    }

    #[test]
    fn from_sorted_matches_from_addrs() {
        let a = AddrInterner::from_addrs([2u32, 4, 8]);
        let b = AddrInterner::from_sorted(vec![2, 4, 8]);
        assert_eq!(a, b);
    }

    #[test]
    fn empty() {
        let it = AddrInterner::from_addrs(std::iter::empty());
        assert!(it.is_empty());
        assert_eq!(it.id(0), None);
        assert_eq!(it.iter().count(), 0);
    }

    #[test]
    fn iter_pairs() {
        let it = AddrInterner::from_addrs([7u32, 3]);
        let pairs: Vec<(u32, u32)> = it.iter().collect();
        assert_eq!(pairs, vec![(0, 3), (1, 7)]);
    }
}
