//! A path-compressed binary radix (Patricia) trie keyed by IPv4 prefixes.
//!
//! This is the longest-prefix-match engine behind every IP→origin-AS lookup
//! in the workspace. A full ITDK-scale run performs tens of millions of
//! lookups, so the trie is arena-allocated (nodes live in a `Vec`, children
//! are indices) and lookups perform no allocation and no pointer chasing
//! beyond the arena.

use crate::Prefix;
use serde::{Deserialize, Serialize};

const NO_NODE: u32 = u32::MAX;

/// One trie node. `prefix` is the full key path down to this node; interior
/// nodes created by path compression carry `value: None`.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct Node<T> {
    prefix: Prefix,
    value: Option<T>,
    /// Children indexed by the bit immediately after `prefix.len()`.
    child: [u32; 2],
}

/// A map from IPv4 prefixes to values with longest-prefix-match lookup.
///
/// ```
/// use net_types::{Prefix, PrefixTrie, parse_ipv4};
/// let mut t = PrefixTrie::new();
/// t.insert("10.0.0.0/8".parse().unwrap(), "big");
/// t.insert("10.1.0.0/16".parse().unwrap(), "small");
/// let (p, v) = t.longest_match(parse_ipv4("10.1.2.3").unwrap()).unwrap();
/// assert_eq!(*v, "small");
/// assert_eq!(p.to_string(), "10.1.0.0/16");
/// let (_, v) = t.longest_match(parse_ipv4("10.9.9.9").unwrap()).unwrap();
/// assert_eq!(*v, "big");
/// assert!(t.longest_match(parse_ipv4("11.0.0.0").unwrap()).is_none());
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PrefixTrie<T> {
    nodes: Vec<Node<T>>,
    root: u32,
    len: usize,
}

impl<T> Default for PrefixTrie<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PrefixTrie<T> {
    /// Creates an empty trie.
    pub fn new() -> Self {
        PrefixTrie {
            nodes: Vec::new(),
            root: NO_NODE,
            len: 0,
        }
    }

    /// Number of prefixes stored (interior path-compression nodes excluded).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no prefix has been inserted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn alloc(&mut self, prefix: Prefix, value: Option<T>) -> u32 {
        let idx = self.nodes.len() as u32;
        self.nodes.push(Node {
            prefix,
            value,
            child: [NO_NODE, NO_NODE],
        });
        idx
    }

    /// Length of the longest common prefix of two prefixes, capped at both
    /// lengths.
    fn common_len(a: Prefix, b: Prefix) -> u8 {
        let max = a.len().min(b.len());
        let diff = a.addr() ^ b.addr();
        let lead = diff.leading_zeros() as u8;
        lead.min(max)
    }

    /// Inserts `prefix → value`, returning the previous value if the prefix
    /// was already present.
    pub fn insert(&mut self, prefix: Prefix, value: T) -> Option<T> {
        if self.root == NO_NODE {
            self.root = self.alloc(prefix, Some(value));
            self.len += 1;
            return None;
        }
        let mut cur = self.root;
        let mut parent: u32 = NO_NODE;
        let mut parent_slot = 0usize;
        loop {
            let node_prefix = self.nodes[cur as usize].prefix;
            let common = Self::common_len(prefix, node_prefix);
            if common == node_prefix.len() && common == prefix.len() {
                // Exact node for this prefix (possibly an interior node).
                let old = self.nodes[cur as usize].value.replace(value);
                if old.is_none() {
                    self.len += 1;
                }
                return old;
            }
            if common == node_prefix.len() {
                // `prefix` extends below this node; descend.
                let bit = prefix.bit(node_prefix.len()) as usize;
                let next = self.nodes[cur as usize].child[bit];
                if next == NO_NODE {
                    let leaf = self.alloc(prefix, Some(value));
                    self.nodes[cur as usize].child[bit] = leaf;
                    self.len += 1;
                    return None;
                }
                parent = cur;
                parent_slot = bit;
                cur = next;
                continue;
            }
            // Split: the node's path and the new prefix diverge at `common`
            // (or the new prefix is a strict ancestor of the node).
            let joint = Prefix::new(node_prefix.addr(), common);
            if common == prefix.len() {
                // New prefix is an ancestor of the existing node.
                let new_node = self.alloc(prefix, Some(value));
                let bit = node_prefix.bit(common) as usize;
                self.nodes[new_node as usize].child[bit] = cur;
                self.attach(parent, parent_slot, new_node);
                self.len += 1;
                return None;
            }
            // True divergence: make an interior joint node with two children.
            let joint_node = self.alloc(joint, None);
            let leaf = self.alloc(prefix, Some(value));
            let node_bit = node_prefix.bit(common) as usize;
            let new_bit = prefix.bit(common) as usize;
            debug_assert_ne!(node_bit, new_bit);
            self.nodes[joint_node as usize].child[node_bit] = cur;
            self.nodes[joint_node as usize].child[new_bit] = leaf;
            self.attach(parent, parent_slot, joint_node);
            self.len += 1;
            return None;
        }
    }

    fn attach(&mut self, parent: u32, slot: usize, node: u32) {
        if parent == NO_NODE {
            self.root = node;
        } else {
            self.nodes[parent as usize].child[slot] = node;
        }
    }

    /// Exact-match lookup of a prefix.
    pub fn get(&self, prefix: Prefix) -> Option<&T> {
        let mut cur = self.root;
        while cur != NO_NODE {
            let node = &self.nodes[cur as usize];
            let np = node.prefix;
            if !np.covers(prefix) {
                return None;
            }
            if np.len() == prefix.len() {
                return node.value.as_ref();
            }
            cur = node.child[prefix.bit(np.len()) as usize];
        }
        None
    }

    /// Longest-prefix-match for an address: returns the most specific stored
    /// prefix containing `addr`, with its value.
    pub fn longest_match(&self, addr: u32) -> Option<(Prefix, &T)> {
        let target = Prefix::host(addr);
        let mut best: Option<(Prefix, &T)> = None;
        let mut cur = self.root;
        while cur != NO_NODE {
            let node = &self.nodes[cur as usize];
            if !node.prefix.contains(addr) {
                break;
            }
            if let Some(v) = &node.value {
                best = Some((node.prefix, v));
            }
            if node.prefix.len() == 32 {
                break;
            }
            cur = node.child[target.bit(node.prefix.len()) as usize];
        }
        best
    }

    /// All stored prefixes containing `addr`, shortest first.
    pub fn matches(&self, addr: u32) -> Vec<(Prefix, &T)> {
        let target = Prefix::host(addr);
        let mut out = Vec::new();
        let mut cur = self.root;
        while cur != NO_NODE {
            let node = &self.nodes[cur as usize];
            if !node.prefix.contains(addr) {
                break;
            }
            if let Some(v) = &node.value {
                out.push((node.prefix, v));
            }
            if node.prefix.len() == 32 {
                break;
            }
            cur = node.child[target.bit(node.prefix.len()) as usize];
        }
        out
    }

    /// Iterates over all `(prefix, value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, &T)> {
        self.nodes
            .iter()
            .filter_map(|n| n.value.as_ref().map(|v| (n.prefix, v)))
    }
}

impl<T> FromIterator<(Prefix, T)> for PrefixTrie<T> {
    fn from_iter<I: IntoIterator<Item = (Prefix, T)>>(iter: I) -> Self {
        let mut t = PrefixTrie::new();
        for (p, v) in iter {
            t.insert(p, v);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn ip(s: &str) -> u32 {
        crate::parse_ipv4(s).unwrap()
    }

    #[test]
    fn empty() {
        let t: PrefixTrie<u32> = PrefixTrie::new();
        assert!(t.is_empty());
        assert!(t.longest_match(0).is_none());
        assert!(t.get(p("0.0.0.0/0")).is_none());
    }

    #[test]
    fn single_default_route() {
        let mut t = PrefixTrie::new();
        t.insert(Prefix::DEFAULT, 99u32);
        assert_eq!(t.longest_match(ip("1.2.3.4")).unwrap().1, &99);
        assert_eq!(t.longest_match(ip("255.255.255.255")).unwrap().1, &99);
    }

    #[test]
    fn nested_lpm() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), 8);
        t.insert(p("10.1.0.0/16"), 16);
        t.insert(p("10.1.2.0/24"), 24);
        t.insert(p("10.1.2.128/25"), 25);
        assert_eq!(t.len(), 4);
        assert_eq!(t.longest_match(ip("10.1.2.200")).unwrap().1, &25);
        assert_eq!(t.longest_match(ip("10.1.2.5")).unwrap().1, &24);
        assert_eq!(t.longest_match(ip("10.1.99.1")).unwrap().1, &16);
        assert_eq!(t.longest_match(ip("10.99.99.1")).unwrap().1, &8);
        assert!(t.longest_match(ip("11.0.0.1")).is_none());
    }

    #[test]
    fn divergent_siblings() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/24"), 1);
        t.insert(p("10.0.1.0/24"), 2);
        t.insert(p("192.168.0.0/16"), 3);
        assert_eq!(t.longest_match(ip("10.0.0.1")).unwrap().1, &1);
        assert_eq!(t.longest_match(ip("10.0.1.1")).unwrap().1, &2);
        assert_eq!(t.longest_match(ip("192.168.5.5")).unwrap().1, &3);
        assert!(t.longest_match(ip("10.0.2.1")).is_none());
    }

    #[test]
    fn insert_ancestor_after_descendant() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.1.2.0/24"), 24);
        t.insert(p("10.0.0.0/8"), 8);
        assert_eq!(t.longest_match(ip("10.1.2.3")).unwrap().1, &24);
        assert_eq!(t.longest_match(ip("10.200.0.1")).unwrap().1, &8);
    }

    #[test]
    fn replace_value() {
        let mut t = PrefixTrie::new();
        assert_eq!(t.insert(p("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.longest_match(ip("10.0.0.1")).unwrap().1, &2);
    }

    #[test]
    fn interior_node_gets_value_later() {
        let mut t = PrefixTrie::new();
        // These two force an interior joint node at 10.0.0.0/23.
        t.insert(p("10.0.0.0/24"), 1);
        t.insert(p("10.0.1.0/24"), 2);
        // Now fill in the joint itself.
        t.insert(p("10.0.0.0/23"), 3);
        assert_eq!(t.len(), 3);
        assert_eq!(t.longest_match(ip("10.0.0.1")).unwrap().1, &1);
        assert_eq!(t.longest_match(ip("10.0.1.1")).unwrap().1, &2);
        assert_eq!(t.get(p("10.0.0.0/23")), Some(&3));
    }

    #[test]
    fn host_routes() {
        let mut t = PrefixTrie::new();
        t.insert(p("1.2.3.4/32"), 1);
        t.insert(p("1.2.3.5/32"), 2);
        assert_eq!(t.longest_match(ip("1.2.3.4")).unwrap().1, &1);
        assert_eq!(t.longest_match(ip("1.2.3.5")).unwrap().1, &2);
        assert!(t.longest_match(ip("1.2.3.6")).is_none());
    }

    #[test]
    fn matches_returns_chain() {
        let mut t = PrefixTrie::new();
        t.insert(p("0.0.0.0/0"), 0);
        t.insert(p("10.0.0.0/8"), 8);
        t.insert(p("10.1.0.0/16"), 16);
        let chain: Vec<u8> = t
            .matches(ip("10.1.2.3"))
            .iter()
            .map(|(pr, _)| pr.len())
            .collect();
        assert_eq!(chain, vec![0, 8, 16]);
    }

    #[test]
    fn iter_sees_all() {
        let mut t = PrefixTrie::new();
        let prefixes = [p("10.0.0.0/8"), p("10.0.0.0/24"), p("172.16.0.0/12")];
        for (i, pr) in prefixes.iter().enumerate() {
            t.insert(*pr, i);
        }
        let mut seen: Vec<Prefix> = t.iter().map(|(pr, _)| pr).collect();
        seen.sort();
        let mut want = prefixes.to_vec();
        want.sort();
        assert_eq!(seen, want);
    }

    /// Naive reference: linear scan for the longest containing prefix.
    fn naive_lpm(entries: &[(Prefix, u32)], addr: u32) -> Option<(Prefix, u32)> {
        entries
            .iter()
            .filter(|(pr, _)| pr.contains(addr))
            .max_by_key(|(pr, _)| pr.len())
            .copied()
    }

    proptest! {
        #[test]
        fn trie_matches_naive(
            raw in proptest::collection::vec((any::<u32>(), 0u8..=32), 1..120),
            queries in proptest::collection::vec(any::<u32>(), 1..60),
        ) {
            // Deduplicate canonical prefixes, keeping the LAST value for each,
            // matching insert-overwrites semantics.
            let mut entries: Vec<(Prefix, u32)> = Vec::new();
            let mut t = PrefixTrie::new();
            for (i, (addr, len)) in raw.iter().enumerate() {
                let pr = Prefix::new(*addr, *len);
                t.insert(pr, i as u32);
                entries.retain(|(e, _)| *e != pr);
                entries.push((pr, i as u32));
            }
            prop_assert_eq!(t.len(), entries.len());
            for q in queries {
                let got = t.longest_match(q).map(|(pr, v)| (pr, *v));
                let want = naive_lpm(&entries, q);
                // The longest prefix is unique, so compare prefixes, then values.
                prop_assert_eq!(got.map(|g| g.0), want.map(|w| w.0));
                prop_assert_eq!(got.map(|g| g.1), want.map(|w| w.1));
            }
        }

        #[test]
        fn get_after_insert(raw in proptest::collection::vec((any::<u32>(), 0u8..=32), 1..80)) {
            let mut t = PrefixTrie::new();
            for (i, (addr, len)) in raw.iter().enumerate() {
                t.insert(Prefix::new(*addr, *len), i);
            }
            // Every inserted prefix must be retrievable (value = last write).
            for (i, (addr, len)) in raw.iter().enumerate() {
                let pr = Prefix::new(*addr, *len);
                let last = raw.iter().enumerate()
                    .filter(|(_, (a2, l2))| Prefix::new(*a2, *l2) == pr)
                    .map(|(j, _)| j)
                    .max()
                    .unwrap();
                let _ = i;
                prop_assert_eq!(t.get(pr), Some(&last));
            }
        }
    }
}
