//! Autonomous system numbers.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// An autonomous system number (32-bit, RFC 6793).
///
/// `Asn(0)` is used throughout the workspace as "no AS / unannounced"; the
/// constant [`Asn::NONE`] makes that intent explicit at call sites. The IP
/// address of a traceroute hop that matches no BGP prefix, no RIR delegation,
/// and no IXP prefix maps to `Asn::NONE`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Asn(pub u32);

impl Asn {
    /// The sentinel "no origin AS" value (AS0 is reserved by RFC 7607
    /// precisely to mean "not routed").
    pub const NONE: Asn = Asn(0);

    /// Returns true if this is the [`Asn::NONE`] sentinel.
    #[inline]
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// Returns true if this is a real, usable ASN.
    #[inline]
    pub fn is_some(self) -> bool {
        self.0 != 0
    }

    /// Returns true for ASNs reserved for private use (RFC 6996):
    /// 64512–65534 and 4200000000–4294967294.
    #[inline]
    pub fn is_private(self) -> bool {
        (64512..=65534).contains(&self.0) || (4_200_000_000..=4_294_967_294).contains(&self.0)
    }

    /// Returns true for ASNs that must never appear as a routable origin:
    /// AS0, AS23456 (AS_TRANS), the documentation ranges 64496–64511 and
    /// 65536–65551, 65535, and 4294967295 (RFC 7300).
    #[inline]
    pub fn is_reserved(self) -> bool {
        self.0 == 0
            || self.0 == 23456
            || (64496..=64511).contains(&self.0)
            || (65536..=65551).contains(&self.0)
            || self.0 == 65535
            || self.0 == u32::MAX
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl fmt::Debug for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl From<u32> for Asn {
    fn from(v: u32) -> Self {
        Asn(v)
    }
}

impl FromStr for Asn {
    type Err = std::num::ParseIntError;

    /// Parses `"64500"` or `"AS64500"` (case-insensitive prefix).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let digits = s
            .strip_prefix("AS")
            .or_else(|| s.strip_prefix("as"))
            .or_else(|| s.strip_prefix("As"))
            .unwrap_or(s);
        digits.parse::<u32>().map(Asn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_parse() {
        let a = Asn(64500);
        assert_eq!(a.to_string(), "AS64500");
        assert_eq!("AS64500".parse::<Asn>().unwrap(), a);
        assert_eq!("64500".parse::<Asn>().unwrap(), a);
        assert_eq!("as64500".parse::<Asn>().unwrap(), a);
        assert!("ASX".parse::<Asn>().is_err());
    }

    #[test]
    fn sentinel() {
        assert!(Asn::NONE.is_none());
        assert!(!Asn::NONE.is_some());
        assert!(Asn(1).is_some());
    }

    #[test]
    fn reserved_ranges() {
        assert!(Asn(0).is_reserved());
        assert!(Asn(23456).is_reserved());
        assert!(Asn(64496).is_reserved());
        assert!(Asn(65535).is_reserved());
        assert!(Asn(u32::MAX).is_reserved());
        assert!(!Asn(3356).is_reserved());
        assert!(Asn(64512).is_private());
        assert!(Asn(65534).is_private());
        assert!(!Asn(65535).is_private());
        assert!(Asn(4_200_000_000).is_private());
    }
}
