//! A small multiset used to tally votes in bdrmapIT's election heuristics.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A multiset (bag) over an ordered key type.
///
/// The bdrmapIT algorithm (§6.1, §6.2 of the paper) is a long series of
/// "count votes, take the max, break ties by X" steps. Iteration order must
/// never leak into results, so keys live in a `BTreeMap`: `max_keys` returns
/// tied keys in a deterministic (ascending) order and callers apply the
/// paper's documented tie-breaks on top.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter<K: Ord> {
    counts: BTreeMap<K, u64>,
}

impl<K: Ord + Clone> Counter<K> {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Counter {
            counts: BTreeMap::new(),
        }
    }

    /// Adds one vote for `key`.
    pub fn add(&mut self, key: K) {
        self.add_n(key, 1);
    }

    /// Adds `n` votes for `key`.
    pub fn add_n(&mut self, key: K, n: u64) {
        if n > 0 {
            *self.counts.entry(key).or_insert(0) += n;
        }
    }

    /// Moves all votes from `from` onto `to` (used by the reallocated-prefix
    /// correction, which re-assigns a provider's votes to its customer).
    pub fn transfer(&mut self, from: &K, to: K) {
        if let Some(n) = self.counts.remove(from) {
            self.add_n(to, n);
        }
    }

    /// Removes a key entirely, returning its count.
    pub fn remove(&mut self, key: &K) -> u64 {
        self.counts.remove(key).unwrap_or(0)
    }

    /// Votes for `key` (0 if absent).
    pub fn get(&self, key: &K) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True if no votes have been cast.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Total votes across all keys.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// The highest vote count, or 0 when empty.
    pub fn max_count(&self) -> u64 {
        self.counts.values().copied().max().unwrap_or(0)
    }

    /// All keys tied for the highest vote count, in ascending key order.
    pub fn max_keys(&self) -> Vec<K> {
        let max = self.max_count();
        if max == 0 {
            return Vec::new();
        }
        self.counts
            .iter()
            .filter(|(_, &c)| c == max)
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// The single winner if exactly one key holds the max, else `None`.
    pub fn unique_max(&self) -> Option<K> {
        let mut keys = self.max_keys();
        if keys.len() == 1 {
            keys.pop()
        } else {
            None
        }
    }

    /// Iterates over `(key, count)` in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, u64)> {
        self.counts.iter().map(|(k, &c)| (k, c))
    }

    /// Iterates over the keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.counts.keys()
    }
}

impl<K: Ord + Clone> FromIterator<K> for Counter<K> {
    fn from_iter<I: IntoIterator<Item = K>>(iter: I) -> Self {
        let mut c = Counter::new();
        for k in iter {
            c.add(k);
        }
        c
    }
}

impl<K: Ord + Clone> Extend<K> for Counter<K> {
    fn extend<I: IntoIterator<Item = K>>(&mut self, iter: I) {
        for k in iter {
            self.add(k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_votes() {
        let mut c = Counter::new();
        c.add("a");
        c.add("b");
        c.add("a");
        assert_eq!(c.get(&"a"), 2);
        assert_eq!(c.get(&"b"), 1);
        assert_eq!(c.get(&"z"), 0);
        assert_eq!(c.total(), 3);
        assert_eq!(c.len(), 2);
        assert_eq!(c.max_count(), 2);
        assert_eq!(c.unique_max(), Some("a"));
    }

    #[test]
    fn ties_are_deterministic() {
        let mut c = Counter::new();
        c.add_n(3u32, 5);
        c.add_n(1u32, 5);
        c.add_n(2u32, 4);
        assert_eq!(c.max_keys(), vec![1, 3]);
        assert_eq!(c.unique_max(), None);
    }

    #[test]
    fn empty_behaviour() {
        let c: Counter<u32> = Counter::new();
        assert!(c.is_empty());
        assert_eq!(c.max_count(), 0);
        assert!(c.max_keys().is_empty());
        assert_eq!(c.unique_max(), None);
    }

    #[test]
    fn transfer_moves_votes() {
        let mut c = Counter::new();
        c.add_n("provider", 4);
        c.add_n("customer", 1);
        c.transfer(&"provider", "customer");
        assert_eq!(c.get(&"provider"), 0);
        assert_eq!(c.get(&"customer"), 5);
        // Transferring an absent key is a no-op.
        c.transfer(&"ghost", "customer");
        assert_eq!(c.get(&"customer"), 5);
    }

    #[test]
    fn add_zero_is_noop() {
        let mut c = Counter::new();
        c.add_n("a", 0);
        assert!(c.is_empty());
    }

    #[test]
    fn from_and_extend() {
        let mut c: Counter<u8> = [1, 2, 2, 3].into_iter().collect();
        c.extend([3, 3]);
        assert_eq!(c.get(&1), 1);
        assert_eq!(c.get(&2), 2);
        assert_eq!(c.get(&3), 3);
        assert_eq!(c.unique_max(), Some(3));
    }
}
