//! **pool**: the pipeline's shared work-stealing worker pool.
//!
//! One [`WorkerPool`] is created per pipeline run and threaded through the
//! probe campaign, the phase-1 graph build, and the phase-3 refinement
//! engine, replacing the per-phase fixed-slot spawns each of those used to
//! carry. The pool is the *only* place in the workspace allowed to create
//! threads (detlint's `unscoped-thread` rule pins it); every other crate
//! expresses parallelism as indexed task batches handed to [`WorkerPool::run`]
//! or as lockstep crews handed to [`WorkerPool::broadcast`].
//!
//! # Scheduling model (DESIGN.md §13)
//!
//! [`WorkerPool::run`] executes `tasks` indexed closures on up to
//! [`WorkerPool::workers`] scoped threads. Tasks are **dealt out in
//! contiguous per-worker intervals** of the index space (the same canonical
//! split the old fixed-slot pools used), and a worker that drains its own
//! interval **steals the back half** of the most-loaded sibling's interval —
//! owner pops at the front, thieves split at the back, in the spirit of a
//! Chase-Lev deque built from safe primitives. Callers choose task
//! granularity with [`WorkerPool::batch_size`], which targets
//! [`TASKS_PER_WORKER`] chunks per worker: enough slack for stealing to
//! rebalance skewed shards, coarse enough that per-task overhead (one lock
//! acquisition and one channel send) stays invisible.
//!
//! # Why determinism survives stealing
//!
//! Results are keyed by task index and reassembled in index order after the
//! scope joins, so *which worker* ran a task is unobservable in the output.
//! Every call site feeds the indexed results into an order-insensitive or
//! index-ordered reduction (concatenation in index order, sort+dedup+fold,
//! or commutative metric-sheet merges), so the bit-identical-at-every-
//! thread-count contract holds under any interleaving. Scheduling *is*
//! visible in wall time and in the execution-dependent counter class
//! (`pool.tasks`, `pool.steals`, per-phase busy time) — exactly the values
//! the determinism suite excludes.
//!
//! The pool object itself is what persists across phases: the resolved
//! thread budget and the cumulative scheduling statistics. The OS threads
//! are scoped per batch — in safe Rust (the workspace forbids `unsafe`),
//! long-lived threads cannot borrow phase-local data such as the trace
//! corpus or the half-built graph, so each `run`/`broadcast` opens a
//! `crossbeam::thread::scope` whose threads may freely borrow from the
//! caller's stack. Spawning a scoped thread costs tens of microseconds;
//! at the scales where parallelism pays at all this is noise, and at toy
//! scales the `workers == 1` / single-task fast path skips threads
//! entirely.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use obs::trace::Tracer;
use obs::{Clock, MonotonicClock, Recorder, WorkerTracer};
use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;

/// Target task chunks per worker for [`WorkerPool::batch_size`]: small
/// enough that a straggler chunk can be rebalanced by stealing, large
/// enough that per-task overhead is amortized over many items.
pub const TASKS_PER_WORKER: usize = 8;

/// The canonical chunked deal-out: worker `w` of `crew` owns the contiguous
/// half-open task interval `[tasks*w/crew, tasks*(w+1)/crew)`. Factored out
/// of [`WorkerPool::run`] so the loom protocol model (tests/loom_model.rs)
/// checks the very arithmetic production uses, not a reimplementation.
pub fn deal_intervals(tasks: usize, crew: usize) -> Vec<(usize, usize)> {
    (0..crew)
        .map(|w| (tasks * w / crew, tasks * (w + 1) / crew))
        .collect()
}

/// How many tasks a thief splits off the back of a victim interval with
/// `rem` tasks remaining: the back half, rounded up so a 1-task interval is
/// still stealable. Shared with the loom protocol model like
/// [`deal_intervals`].
pub fn steal_take(rem: usize) -> usize {
    rem.div_ceil(2)
}

/// Cumulative scheduling statistics, across every batch a pool has run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Tasks executed (including broadcast crew slots).
    pub tasks: u64,
    /// Tasks taken from a sibling's interval rather than the dealt one.
    pub steals: u64,
    /// `run`/`broadcast` batches dispatched.
    pub batches: u64,
    /// Aggregate worker busy time, in nanoseconds (sums across workers, so
    /// it can exceed wall time).
    pub busy_nanos: u64,
}

/// The shared worker pool: a thread budget plus cumulative scheduling
/// statistics, created once per pipeline run and passed to every phase.
pub struct WorkerPool {
    workers: usize,
    clock: Arc<dyn Clock>,
    rec: Recorder,
    tracer: Tracer,
    tasks: AtomicU64,
    steals: AtomicU64,
    batches: AtomicU64,
    busy_nanos: AtomicU64,
}

impl fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl WorkerPool {
    /// A pool with `threads` workers (`0` = all available parallelism, the
    /// `Config::threads` convention) and telemetry off.
    pub fn new(threads: usize) -> WorkerPool {
        WorkerPool::with_recorder(threads, Recorder::disabled())
    }

    /// A pool that reports `pool.tasks` / `pool.steals` and per-phase busy
    /// time into `rec` as execution-dependent counters after every batch.
    pub fn with_recorder(threads: usize, rec: Recorder) -> WorkerPool {
        let workers = if threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            threads
        };
        let tracer = rec.tracer();
        WorkerPool {
            workers,
            clock: Arc::new(MonotonicClock::new()),
            rec,
            tracer,
            tasks: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            busy_nanos: AtomicU64::new(0),
        }
    }

    /// The resolved worker budget (≥ 1).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The worker count a batch of `jobs` items can actually use — the
    /// budget clamped to the job count (and to 1 for empty batches). Phases
    /// record this as their `*.workers` execution counter.
    pub fn worker_cap(&self, jobs: usize) -> usize {
        self.workers.clamp(1, jobs.max(1))
    }

    /// The per-shard batch size for `items` work items: aims for
    /// [`TASKS_PER_WORKER`] tasks per worker so stealing has slack to
    /// rebalance, never below 1.
    pub fn batch_size(&self, items: usize) -> usize {
        (items / (self.workers * TASKS_PER_WORKER).max(1)).max(1)
    }

    /// Cumulative statistics since the pool was created.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            tasks: self.tasks.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            busy_nanos: self.busy_nanos.load(Ordering::Relaxed),
        }
    }

    /// Runs `job(0..tasks)` across the pool and returns the results in task
    /// index order, bit-identical to a serial `(0..tasks).map(job)` walk.
    ///
    /// `busy` names the execution-dependent counter that receives this
    /// batch's aggregate worker busy time in microseconds (one of the
    /// `obs::names::EXEC_POOL_BUSY_*` constants at pipeline call sites).
    ///
    /// A panic in any task propagates to the caller after all workers have
    /// been joined — the pool never hangs on a dead worker, and an
    /// unhandled propagated panic exits the process nonzero as usual.
    pub fn run<T: Send>(
        &self,
        busy: &'static str,
        tasks: usize,
        job: impl Fn(usize) -> T + Sync,
    ) -> Vec<T> {
        if tasks == 0 {
            // An empty batch is still a dispatched batch: `batches` counts
            // every `run` invocation so callers can reconcile call counts
            // against the stats (PoolStats accounting contract).
            self.account(busy, 0, 0, 0);
            return Vec::new();
        }
        let crew = self.workers.min(tasks);
        if crew == 1 {
            let mut batch_tr = self.tracer.track(obs::names::TRACK_POOL_BATCHES);
            batch_tr.begin(obs::names::EV_POOL_BATCH, tasks as u64);
            let t0 = self.clock.now_nanos();
            let out: Vec<T> = (0..tasks).map(job).collect();
            let busy_ns = self.clock.now_nanos().saturating_sub(t0);
            batch_tr.end(obs::names::EV_POOL_BATCH);
            self.tracer.submit(batch_tr);
            self.account(busy, tasks as u64, 0, busy_ns);
            return out;
        }
        // Chunked deal-out: worker `w` owns the contiguous task interval
        // `[tasks*w/crew, tasks*(w+1)/crew)`; intervals shrink from the
        // front as the owner pops and from the back as thieves split.
        let slots: Vec<Mutex<(usize, usize)>> = deal_intervals(tasks, crew)
            .into_iter()
            .map(Mutex::new)
            .collect();
        let steals = AtomicU64::new(0);
        let busy_ns = AtomicU64::new(0);
        // Per-worker event buffers: each worker records into its own
        // tracer (no shared state on the hot path) and parks it in its
        // slot; the coordinator submits them in worker-index order below.
        let trace_slots: Vec<Mutex<Option<WorkerTracer>>> =
            (0..crew).map(|_| Mutex::new(None)).collect();
        let mut batch_tr = self.tracer.track(obs::names::TRACK_POOL_BATCHES);
        batch_tr.begin(obs::names::EV_POOL_BATCH, tasks as u64);
        let (tx, rx) = mpsc::channel::<(usize, T)>();
        let result = crossbeam::thread::scope(|s| {
            let (slots, job) = (&slots, &job);
            let (steals, busy_ns) = (&steals, &busy_ns);
            let (clock, tracer) = (&self.clock, &self.tracer);
            for (w, trace_slot) in trace_slots.iter().enumerate().skip(1) {
                let tx = tx.clone();
                s.spawn(move |_| {
                    let mut wt = tracer.worker(obs::names::TRACK_POOL_WORKER, w);
                    let t0 = clock.now_nanos();
                    steal_loop(w, slots, job, &tx, steals, &mut wt);
                    busy_ns.fetch_add(clock.now_nanos().saturating_sub(t0), Ordering::Relaxed);
                    *trace_slot.lock() = Some(wt);
                });
            }
            let mut wt = tracer.worker(obs::names::TRACK_POOL_WORKER, 0);
            let t0 = clock.now_nanos();
            steal_loop(0, slots, job, &tx, steals, &mut wt);
            busy_ns.fetch_add(clock.now_nanos().saturating_sub(t0), Ordering::Relaxed);
            *trace_slots[0].lock() = Some(wt);
        });
        drop(tx);
        if let Err(payload) = result {
            std::panic::resume_unwind(payload);
        }
        batch_tr.begin(obs::names::EV_POOL_REASSEMBLE, tasks as u64);
        let mut out: Vec<Option<T>> = (0..tasks).map(|_| None).collect();
        for (i, v) in rx {
            out[i] = Some(v);
        }
        batch_tr.end(obs::names::EV_POOL_REASSEMBLE);
        batch_tr.end(obs::names::EV_POOL_BATCH);
        for slot in trace_slots {
            if let Some(wt) = slot.into_inner() {
                self.tracer.submit(wt);
            }
        }
        self.tracer.submit(batch_tr);
        self.account(
            busy,
            tasks as u64,
            // detlint::allow(relaxed-atomic-output): counters feed the exec-only PoolStats/metrics surface, never the returned Vec
            steals.load(Ordering::Relaxed),
            busy_ns.load(Ordering::Relaxed),
        );
        out.into_iter()
            .map(|s| s.expect("worker pool lost a task"))
            .collect()
    }

    /// Runs `job(w)` once per crew member `w in 0..crew`, each on its own
    /// thread, concurrently — the SPMD shape the refinement engine's
    /// lockstep barrier needs, where two crew slots landing on one thread
    /// would deadlock. Broadcast slots are therefore never stolen. Results
    /// come back in crew order; panics propagate as in [`WorkerPool::run`].
    pub fn broadcast<T: Send>(
        &self,
        busy: &'static str,
        crew: usize,
        job: impl Fn(usize) -> T + Sync,
    ) -> Vec<T> {
        if crew == 0 {
            // Same contract as `run`: an empty crew still counts a batch.
            self.account(busy, 0, 0, 0);
            return Vec::new();
        }
        if crew == 1 {
            let mut batch_tr = self.tracer.track(obs::names::TRACK_POOL_BATCHES);
            batch_tr.begin(obs::names::EV_POOL_BATCH, 1);
            let t0 = self.clock.now_nanos();
            let out = vec![job(0)];
            let busy_ns = self.clock.now_nanos().saturating_sub(t0);
            batch_tr.end(obs::names::EV_POOL_BATCH);
            self.tracer.submit(batch_tr);
            self.account(busy, 1, 0, busy_ns);
            return out;
        }
        let busy_ns = AtomicU64::new(0);
        let trace_slots: Vec<Mutex<Option<WorkerTracer>>> =
            (0..crew).map(|_| Mutex::new(None)).collect();
        let mut batch_tr = self.tracer.track(obs::names::TRACK_POOL_BATCHES);
        batch_tr.begin(obs::names::EV_POOL_BATCH, crew as u64);
        let (tx, rx) = mpsc::channel::<(usize, T)>();
        let result = crossbeam::thread::scope(|s| {
            let job = &job;
            let busy_ns = &busy_ns;
            let (clock, tracer) = (&self.clock, &self.tracer);
            for (w, trace_slot) in trace_slots.iter().enumerate().skip(1) {
                let tx = tx.clone();
                s.spawn(move |_| {
                    let mut wt = tracer.worker(obs::names::TRACK_POOL_WORKER, w);
                    wt.begin(obs::names::EV_POOL_TASK, w as u64);
                    let t0 = clock.now_nanos();
                    let v = job(w);
                    busy_ns.fetch_add(clock.now_nanos().saturating_sub(t0), Ordering::Relaxed);
                    wt.end(obs::names::EV_POOL_TASK);
                    *trace_slot.lock() = Some(wt);
                    let _ = tx.send((w, v));
                });
            }
            let mut wt = tracer.worker(obs::names::TRACK_POOL_WORKER, 0);
            wt.begin(obs::names::EV_POOL_TASK, 0);
            let t0 = clock.now_nanos();
            let v = job(0);
            busy_ns.fetch_add(clock.now_nanos().saturating_sub(t0), Ordering::Relaxed);
            wt.end(obs::names::EV_POOL_TASK);
            *trace_slots[0].lock() = Some(wt);
            let _ = tx.send((0, v));
        });
        drop(tx);
        if let Err(payload) = result {
            std::panic::resume_unwind(payload);
        }
        let mut out: Vec<Option<T>> = (0..crew).map(|_| None).collect();
        for (i, v) in rx {
            out[i] = Some(v);
        }
        batch_tr.end(obs::names::EV_POOL_BATCH);
        for slot in trace_slots {
            if let Some(wt) = slot.into_inner() {
                self.tracer.submit(wt);
            }
        }
        self.tracer.submit(batch_tr);
        // detlint::allow(relaxed-atomic-output): busy-time counter feeds the exec-only PoolStats/metrics surface, never the returned Vec
        self.account(busy, crew as u64, 0, busy_ns.load(Ordering::Relaxed));
        out.into_iter()
            .map(|s| s.expect("broadcast crew member lost"))
            .collect()
    }

    /// Folds one batch's scheduling tallies into the cumulative stats and
    /// the execution-dependent counter class.
    fn account(&self, busy: &'static str, tasks: u64, steals: u64, busy_nanos: u64) {
        self.tasks.fetch_add(tasks, Ordering::Relaxed);
        self.steals.fetch_add(steals, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.busy_nanos.fetch_add(busy_nanos, Ordering::Relaxed);
        self.rec.add_exec(obs::names::EXEC_POOL_TASKS, tasks);
        self.rec.add_exec(obs::names::EXEC_POOL_STEALS, steals);
        self.rec.add_exec(busy, busy_nanos / 1_000);
    }
}

/// One worker's schedule: pop single tasks from the front of the own
/// interval; when it runs dry, split the back half off the most-loaded
/// sibling and continue; stop when every interval is empty.
fn steal_loop<T: Send, F: Fn(usize) -> T + Sync>(
    me: usize,
    slots: &[Mutex<(usize, usize)>],
    job: &F,
    tx: &mpsc::Sender<(usize, T)>,
    steals: &AtomicU64,
    wt: &mut WorkerTracer,
) {
    loop {
        let task = {
            let mut own = slots[me].lock();
            if own.0 < own.1 {
                let t = own.0;
                own.0 += 1;
                Some(t)
            } else {
                None
            }
        };
        if let Some(t) = task {
            wt.begin(obs::names::EV_POOL_TASK, t as u64);
            // The receiver outlives the scope, so a send only fails after a
            // sibling panicked and the whole batch is being torn down.
            let _ = tx.send((t, job(t)));
            wt.end(obs::names::EV_POOL_TASK);
            continue;
        }
        let mut victim = None;
        let mut best = 0usize;
        for (v, slot) in slots.iter().enumerate() {
            if v == me {
                continue;
            }
            let g = slot.lock();
            let rem = g.1 - g.0;
            if rem > best {
                best = rem;
                victim = Some(v);
            }
        }
        let Some(v) = victim else { break };
        let stolen = {
            let mut g = slots[v].lock();
            let rem = g.1 - g.0;
            if rem == 0 {
                continue; // raced with the owner; rescan
            }
            let take = steal_take(rem);
            g.1 -= take;
            (g.1, g.1 + take)
        };
        *slots[me].lock() = stolen;
        steals.fetch_add(1, Ordering::Relaxed);
        wt.instant(obs::names::EV_POOL_STEAL, (stolen.1 - stolen.0) as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        let pool = WorkerPool::new(0);
        assert!(pool.workers() >= 1);
        assert_eq!(WorkerPool::new(3).workers(), 3);
    }

    #[test]
    fn run_matches_serial_map() {
        let pool = WorkerPool::new(4);
        let out = pool.run("pool.busy_us.test", 100, |i| i * i);
        let serial: Vec<usize> = (0..100).map(|i| i * i).collect();
        assert_eq!(out, serial);
    }

    #[test]
    fn empty_and_single_task_batches() {
        let pool = WorkerPool::new(4);
        assert!(pool.run("pool.busy_us.test", 0, |i| i).is_empty());
        assert_eq!(pool.run("pool.busy_us.test", 1, |i| i + 7), vec![7]);
    }

    /// The satellite's "deterministic reduction order under stealing" test:
    /// a deliberately skewed batch (one task orders of magnitude slower than
    /// the rest) forces real steals, and the result vector must still equal
    /// the serial map — task index order, not completion order.
    #[test]
    fn reduction_order_is_index_order_even_under_stealing() {
        let pool = WorkerPool::new(2);
        let before = pool.stats().steals;
        let out = pool.run("pool.busy_us.test", 64, |i| {
            if i == 0 {
                // Pin worker 0 on its first task so worker 1 must drain its
                // own interval and then steal the rest of worker 0's.
                std::thread::sleep(std::time::Duration::from_millis(40));
            }
            i * 3
        });
        let serial: Vec<usize> = (0..64).map(|i| i * 3).collect();
        assert_eq!(out, serial, "stealing must not reorder results");
        assert!(
            pool.stats().steals > before,
            "skewed batch should force at least one steal"
        );
    }

    #[test]
    fn broadcast_runs_every_crew_member_concurrently() {
        let pool = WorkerPool::new(4);
        // A rendezvous only completes if all crew members run at once —
        // exactly the property the refinement barrier depends on.
        let arrived = AtomicUsize::new(0);
        let out = pool.broadcast("pool.busy_us.test", 4, |w| {
            arrived.fetch_add(1, Ordering::SeqCst);
            while arrived.load(Ordering::SeqCst) < 4 {
                std::hint::spin_loop();
            }
            w * 2
        });
        assert_eq!(out, vec![0, 2, 4, 6]);
    }

    #[test]
    fn worker_panic_propagates_and_does_not_hang() {
        let pool = WorkerPool::new(4);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run("pool.busy_us.test", 32, |i| {
                if i == 17 {
                    panic!("task 17 exploded");
                }
                i
            })
        }));
        assert!(caught.is_err(), "panic must reach the caller");
        // The pool is still usable after a failed batch.
        assert_eq!(pool.run("pool.busy_us.test", 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn broadcast_panic_propagates() {
        let pool = WorkerPool::new(3);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast("pool.busy_us.test", 3, |w| {
                if w == 2 {
                    panic!("crew member 2 exploded");
                }
                w
            })
        }));
        assert!(caught.is_err());
    }

    #[test]
    fn stats_accumulate_across_batches() {
        let pool = WorkerPool::new(2);
        pool.run("pool.busy_us.test", 10, |i| i);
        pool.run("pool.busy_us.test", 5, |i| i);
        pool.broadcast("pool.busy_us.test", 2, |w| w);
        let stats = pool.stats();
        assert_eq!(stats.tasks, 17);
        assert_eq!(stats.batches, 3);
    }

    /// PoolStats accounting contract: `tasks` is the sum of per-batch sizes
    /// and `batches` increments exactly once per `run`/`broadcast`
    /// invocation — including the empty-input early-return paths.
    #[test]
    fn stats_account_every_batch_including_empty() {
        let pool = WorkerPool::new(3);
        let sizes = [0usize, 7, 1, 0, 12];
        for &n in &sizes {
            pool.run("pool.busy_us.test", n, |i| i);
        }
        pool.broadcast("pool.busy_us.test", 0, |w| w);
        pool.broadcast("pool.busy_us.test", 2, |w| w);
        let stats = pool.stats();
        let run_tasks: usize = sizes.iter().sum();
        assert_eq!(
            stats.tasks,
            run_tasks as u64 + 2,
            "tasks == sum of per-batch sizes (broadcast crew slots included)"
        );
        assert_eq!(
            stats.batches,
            sizes.len() as u64 + 2,
            "every run/broadcast counts one batch, empty inputs included"
        );
    }

    /// The factored deal-out must partition `0..tasks` into contiguous,
    /// non-overlapping, exhaustive per-worker intervals for every shape.
    #[test]
    fn deal_intervals_partition_the_index_space() {
        for tasks in 0..48 {
            for crew in 1..9 {
                let iv = deal_intervals(tasks, crew);
                assert_eq!(iv.len(), crew);
                assert_eq!(iv[0].0, 0);
                assert_eq!(iv[crew - 1].1, tasks);
                for w in 1..crew {
                    assert_eq!(iv[w - 1].1, iv[w].0, "gap or overlap at worker {w}");
                }
            }
        }
        assert_eq!(steal_take(1), 1, "a 1-task interval is still stealable");
        assert_eq!(steal_take(7), 4, "thieves take the back half, rounded up");
    }

    #[test]
    fn recorder_receives_pool_counters() {
        let rec = Recorder::new(false);
        let pool = WorkerPool::with_recorder(2, rec.clone());
        pool.run("pool.busy_us.test", 20, |i| i);
        let report = rec.report();
        assert_eq!(report.exec[obs::names::EXEC_POOL_TASKS], 20);
        assert!(report.exec.contains_key(obs::names::EXEC_POOL_STEALS));
        assert!(report.exec.contains_key("pool.busy_us.test"));
    }

    /// Tracing captures the scheduling story: a skewed batch that forces
    /// real steals must surface per-task spans, a steal instant, and the
    /// batch dispatch/reassembly spans, and the merged export must pass the
    /// trace validator.
    #[test]
    fn tracing_records_dispatch_steal_and_reassembly() {
        let rec = Recorder::with_tracing(false, 4096);
        let pool = WorkerPool::with_recorder(2, rec.clone());
        let out = pool.run("pool.busy_us.test", 64, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(40));
            }
            i
        });
        assert_eq!(out.len(), 64);
        assert!(pool.stats().steals > 0, "skewed batch should force a steal");
        let doc = rec.tracer().finish();
        let names: Vec<&str> = doc.tracks.iter().map(|t| t.name.as_str()).collect();
        assert!(names.contains(&obs::names::TRACK_POOL_BATCHES));
        // Which workers ran tasks is scheduling-dependent (a thief can
        // drain a sibling's whole interval), but someone always did.
        assert!(names.iter().any(|n| n.starts_with("pool.worker")));
        let json = doc.to_chrome_json();
        assert!(json.contains(obs::names::EV_POOL_TASK));
        assert!(json.contains(obs::names::EV_POOL_STEAL));
        assert!(json.contains(obs::names::EV_POOL_REASSEMBLE));
        obs::trace::validate_chrome_json(&json).expect("pool trace validates");
    }

    /// With tracing off (the default recorder), the pool allocates no
    /// tracks and produces an empty document.
    #[test]
    fn disabled_tracer_stays_empty_through_a_batch() {
        let rec = Recorder::new(false);
        let pool = WorkerPool::with_recorder(4, rec.clone());
        pool.run("pool.busy_us.test", 32, |i| i);
        pool.broadcast("pool.busy_us.test", 2, |w| w);
        assert!(rec.tracer().finish().tracks.is_empty());
    }

    #[test]
    fn batch_size_targets_tasks_per_worker() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.batch_size(0), 1);
        assert_eq!(pool.batch_size(31), 1);
        assert_eq!(pool.batch_size(3200), 100);
        assert_eq!(pool.worker_cap(2), 2);
        assert_eq!(pool.worker_cap(0), 1);
        assert_eq!(pool.worker_cap(100), 4);
    }

    proptest! {
        /// Pool results equal the serial map for arbitrary task counts and
        /// worker budgets — the shard-count-invariance contract every call
        /// site builds on.
        #[test]
        fn run_equals_serial_for_arbitrary_shard_counts(
            tasks in 0usize..200,
            workers in 1usize..9,
        ) {
            let pool = WorkerPool::new(workers);
            let out = pool.run("pool.busy_us.test", tasks, |i| i.wrapping_mul(2654435761));
            let serial: Vec<usize> =
                (0..tasks).map(|i| i.wrapping_mul(2654435761)).collect();
            prop_assert_eq!(out, serial);
        }
    }
}
