//! Model-checks the WorkerPool deal-out / steal / reassembly protocol with
//! the vendored loom checker (DESIGN.md §14). Compiled only under
//! `RUSTFLAGS="--cfg loom"` (the CI `loom` job); in ordinary test runs this
//! file is an empty test binary.
//!
//! The model runs the *actual* production arithmetic — [`pool::deal_intervals`]
//! and [`pool::steal_take`] are the same functions `WorkerPool::run` calls —
//! over loom mutexes and threads, so every interleaving of owner pops and
//! back-half steals within the preemption bound is explored. Three
//! properties are checked:
//!
//! 1. **No lost or duplicated slots**: every task index executes exactly
//!    once under every schedule, including owner/thief races on the same
//!    interval.
//! 2. **Index-ordered reassembly**: keying results by task index makes the
//!    output schedule-invariant. The mutation test seeds the historical
//!    bug — reassembling in *completion* order — and asserts the model
//!    catches it (acceptance criterion: the checker has teeth).
//! 3. **Panic propagation**: a worker panicking mid-protocol surfaces
//!    through join on every schedule instead of hanging the batch.
#![cfg(loom)]

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{Arc, Mutex};
use pool::{deal_intervals, steal_take};

/// Small enough that exhaustive exploration under the default preemption
/// bound finishes in seconds, large enough that deal-out gives each worker
/// a non-trivial interval to pop from and steal.
const TASKS: usize = 4;
const CREW: usize = 2;

fn job(i: usize) -> usize {
    i * 10 + 1
}

fn spawn_worker<F: FnOnce() + Send + 'static>(f: F) -> loom::thread::JoinHandle<()> {
    // detlint::allow(unscoped-thread): loom threads are scheduler puppets of the model checker, created and joined entirely inside loom::model
    loom::thread::spawn(f)
}

/// One worker's schedule, mirroring `pool::steal_loop` on loom primitives:
/// pop the front of the own interval; when dry, split the back half off the
/// most-loaded sibling; stop when every interval is empty. Completed tasks
/// are appended to `log` in completion order (the model's stand-in for the
/// mpsc channel).
fn steal_loop_model(
    me: usize,
    slots: &[Mutex<(usize, usize)>],
    log: &Mutex<Vec<(usize, usize)>>,
    steals: &AtomicUsize,
) {
    loop {
        let task = {
            let mut own = slots[me].lock().unwrap();
            if own.0 < own.1 {
                let t = own.0;
                own.0 += 1;
                Some(t)
            } else {
                None
            }
        };
        if let Some(t) = task {
            log.lock().unwrap().push((t, job(t)));
            continue;
        }
        let mut victim = None;
        let mut best = 0usize;
        for (v, slot) in slots.iter().enumerate() {
            if v == me {
                continue;
            }
            let g = slot.lock().unwrap();
            let rem = g.1 - g.0;
            if rem > best {
                best = rem;
                victim = Some(v);
            }
        }
        let Some(v) = victim else { break };
        let stolen = {
            let mut g = slots[v].lock().unwrap();
            let rem = g.1 - g.0;
            if rem == 0 {
                continue; // raced with the owner; rescan
            }
            let take = steal_take(rem);
            g.1 -= take;
            (g.1, g.1 + take)
        };
        *slots[me].lock().unwrap() = stolen;
        steals.fetch_add(1, Ordering::SeqCst);
    }
}

/// Runs the full protocol once inside the model and returns the completion
/// log — each entry `(task index, result)` in the order tasks finished.
fn run_protocol() -> Vec<(usize, usize)> {
    let slots: Arc<Vec<Mutex<(usize, usize)>>> = Arc::new(
        deal_intervals(TASKS, CREW)
            .into_iter()
            .map(Mutex::new)
            .collect(),
    );
    let log = Arc::new(Mutex::new(Vec::new()));
    let steals = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (1..CREW)
        .map(|w| {
            let slots = Arc::clone(&slots);
            let log = Arc::clone(&log);
            let steals = Arc::clone(&steals);
            spawn_worker(move || steal_loop_model(w, &slots, &log, &steals))
        })
        .collect();
    steal_loop_model(0, &slots, &log, &steals);
    for h in handles {
        h.join().unwrap();
    }
    let done = std::mem::take(&mut *log.lock().unwrap());
    let steals = steals.load(Ordering::SeqCst);
    assert!(steals < TASKS * CREW, "steal loop must terminate");
    done
}

/// Properties 1 + 2: under every explored interleaving, each slot executes
/// exactly once and index-keyed reassembly reproduces the serial map.
#[test]
fn no_lost_slots_and_index_ordered_reassembly() {
    loom::model(|| {
        let done = run_protocol();
        assert_eq!(done.len(), TASKS, "lost or duplicated slot");
        let mut out: Vec<Option<usize>> = vec![None; TASKS];
        for &(i, v) in &done {
            assert!(out[i].is_none(), "slot {i} executed twice");
            out[i] = Some(v);
        }
        let reassembled: Vec<usize> = out
            .into_iter()
            .map(|s| s.expect("worker pool lost a task"))
            .collect();
        let serial: Vec<usize> = (0..TASKS).map(job).collect();
        assert_eq!(reassembled, serial);
    });
}

/// The seeded reassembly-order bug (acceptance criterion): collecting
/// results in *completion* order instead of task-index order. The model
/// must find an interleaving — e.g. worker 1 running its interval `[2,4)`
/// before worker 0 starts — where the output diverges from the serial map.
#[test]
fn model_catches_completion_order_reassembly_bug() {
    let caught = std::panic::catch_unwind(|| {
        loom::model(|| {
            let done = run_protocol();
            let buggy: Vec<usize> = done.iter().map(|&(_, v)| v).collect();
            let serial: Vec<usize> = (0..TASKS).map(job).collect();
            assert_eq!(buggy, serial, "completion order happened to match");
        });
    });
    assert!(
        caught.is_err(),
        "some interleaving must complete out of index order; \
         if this fails the model is not exploring schedules"
    );
}

/// Property 3: a worker panicking mid-protocol (here: on a stolen task)
/// surfaces through join under every schedule — the batch tears down, it
/// never hangs, and the sibling's completed work is unaffected.
#[test]
fn worker_panic_surfaces_through_join_on_every_schedule() {
    loom::model(|| {
        let slots: Arc<Vec<Mutex<(usize, usize)>>> = Arc::new(
            deal_intervals(TASKS, CREW)
                .into_iter()
                .map(Mutex::new)
                .collect(),
        );
        let log = Arc::new(Mutex::new(Vec::new()));
        let steals = Arc::new(AtomicUsize::new(0));
        let h = {
            let slots = Arc::clone(&slots);
            spawn_worker(move || {
                // Worker 1 dies before touching its interval: its dealt
                // tasks would be lost without the caller observing Err.
                let _ = &slots;
                panic!("worker 1 exploded");
            })
        };
        steal_loop_model(0, &slots, &log, &steals);
        assert!(h.join().is_err(), "panic must surface through join");
        // Worker 0 still drained every interval (it steals the dead
        // sibling's dealt-out share), so no slot is silently dropped.
        assert_eq!(log.lock().unwrap().len(), TASKS);
    });
}
