//! MAP-IT baseline (Marder & Smith, IMC 2016).
//!
//! MAP-IT infers interdomain links from an *interface-level* graph — no
//! alias resolution, no destination ASes, no last-hop handling. Each
//! interface starts mapped to its BGP origin AS; an interface whose
//! neighbors on one side plurality-map to a different AS is inferred to sit
//! on a router *operated by that AS* (the address was lent across the
//! boundary for the interconnect). Each iteration re-runs the inference
//! using the operators inferred so far, refining the graph until a pass
//! changes nothing.
//!
//! This is the comparison baseline for the paper's Figs. 16 and 17: bdrmapIT
//! keeps similar precision while recalling far more links, because MAP-IT
//! "lacks heuristics for edge networks and low-visibility links, such as
//! routers without subsequent hops in traceroute" (§2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bgp::{IpToAs, OriginKind};
use net_types::{Asn, Counter};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use traceroute::Trace;

/// Tunables for the inference.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MapitConfig {
    /// Minimum fraction of one side's neighbor votes an AS must hold to be
    /// inferred as the far operator (the MAP-IT paper sweeps this f
    /// parameter; 0.5 is its default plurality threshold).
    pub plurality: f64,
    /// Maximum refinement passes.
    pub max_iterations: usize,
}

impl Default for MapitConfig {
    fn default() -> Self {
        MapitConfig {
            plurality: 0.5,
            max_iterations: 50,
        }
    }
}

/// One inferred interdomain half-link: `iface_addr` (originated by
/// `origin`) sits on a router operated by `operator`, so the ASes meet at
/// this interface.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MapitLink {
    /// The border interface.
    pub iface_addr: u32,
    /// BGP origin of the interface address (the near side).
    pub origin: Asn,
    /// Inferred operator of the router carrying it (the far side).
    pub operator: Asn,
}

/// The interface-level graph and its inference state.
#[derive(Clone, Debug)]
pub struct Mapit {
    addrs: Vec<u32>,
    origin: Vec<Asn>,
    /// Inferred router operator per interface (starts as origin).
    operator: Vec<Asn>,
    /// Interfaces seen immediately before / after each interface.
    prev: Vec<BTreeSet<u32>>,
    next: Vec<BTreeSet<u32>>,
    index: BTreeMap<u32, usize>,
    border: Vec<bool>,
    iterations: usize,
}

impl Mapit {
    /// Builds the interface graph from a corpus.
    pub fn build(traces: &[Trace], ip2as: &IpToAs) -> Mapit {
        let mut index: BTreeMap<u32, usize> = BTreeMap::new();
        let mut addrs = Vec::new();
        for t in traces {
            for (_, h) in t.responsive() {
                index.entry(h.addr).or_insert_with(|| {
                    addrs.push(h.addr);
                    addrs.len() - 1
                });
            }
        }
        let n = addrs.len();
        let mut g = Mapit {
            origin: addrs
                .iter()
                .map(|&a| {
                    let info = ip2as.lookup(a);
                    // IXP addresses carry no usable origin (shared LAN).
                    if info.kind == OriginKind::Ixp {
                        Asn::NONE
                    } else {
                        info.asn
                    }
                })
                .collect(),
            operator: vec![Asn::NONE; n],
            prev: vec![BTreeSet::new(); n],
            next: vec![BTreeSet::new(); n],
            border: vec![false; n],
            iterations: 0,
            addrs,
            index,
        };
        g.operator.clone_from(&g.origin);
        for t in traces {
            let hops: Vec<(u8, traceroute::Hop)> = t.responsive().collect();
            for w in hops.windows(2) {
                let ((_, x), (_, y)) = (w[0], w[1]);
                if x.addr == y.addr {
                    continue;
                }
                let xi = g.index[&x.addr];
                let yi = g.index[&y.addr];
                g.next[xi].insert(y.addr);
                g.prev[yi].insert(x.addr);
            }
        }
        g
    }

    /// Runs the iterative inference to a fixed point.
    pub fn run(&mut self, cfg: &MapitConfig) {
        for i in 0..cfg.max_iterations {
            self.iterations = i + 1;
            if !self.pass(cfg) {
                break;
            }
        }
    }

    /// One refinement pass; returns whether anything changed.
    fn pass(&mut self, cfg: &MapitConfig) -> bool {
        let mut changed = false;
        for idx in 0..self.addrs.len() {
            let origin = self.origin[idx];
            if origin.is_none() {
                continue; // MAP-IT has no handling for unannounced space
            }
            let decide = |side: &BTreeSet<u32>| -> Option<Asn> {
                // A plurality needs more than one witness; single-neighbor
                // chains otherwise cascade false borders upstream.
                if side.len() < 2 {
                    return None;
                }
                let mut votes: Counter<Asn> = Counter::new();
                for &naddr in side {
                    let ni = self.index[&naddr];
                    let a = self.operator[ni];
                    if a.is_some() {
                        votes.add(a);
                    }
                }
                let total = votes.total();
                if total == 0 {
                    return None;
                }
                // Plurality winner, deterministic tie toward lowest ASN.
                let winner = votes.max_keys().into_iter().next()?;
                let frac = votes.get(&winner) as f64 / total as f64;
                (winner != origin && frac >= cfg.plurality).then_some(winner)
            };
            // "a plurality of either its subsequent or preceding interfaces
            // map to another AS" — subsequent side checked first.
            let inferred = decide(&self.next[idx]).or_else(|| decide(&self.prev[idx]));
            match inferred {
                Some(op) => {
                    if self.operator[idx] != op || !self.border[idx] {
                        self.operator[idx] = op;
                        self.border[idx] = true;
                        changed = true;
                    }
                }
                None => {
                    if self.border[idx] {
                        self.border[idx] = false;
                        self.operator[idx] = origin;
                        changed = true;
                    }
                }
            }
        }
        changed
    }

    /// The inferred interdomain links.
    pub fn links(&self) -> Vec<MapitLink> {
        let mut out: Vec<MapitLink> = (0..self.addrs.len())
            .filter(|&i| self.border[i])
            .map(|i| MapitLink {
                iface_addr: self.addrs[i],
                origin: self.origin[i],
                operator: self.operator[i],
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// The inferred operator of the router carrying `addr` (its origin AS
    /// unless a border inference moved it).
    pub fn operator_of(&self, addr: u32) -> Option<Asn> {
        let &i = self.index.get(&addr)?;
        let a = self.operator[i];
        a.is_some().then_some(a)
    }

    /// Refinement passes executed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Interfaces in the graph.
    pub fn interface_count(&self) -> usize {
        self.addrs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_types::Prefix;
    use traceroute::{Hop, ReplyType, StopReason};

    fn tr(dst: u32, hops: &[u32]) -> Trace {
        Trace {
            monitor: "vp".into(),
            src: 1,
            dst,
            hops: hops
                .iter()
                .map(|&a| {
                    Some(Hop {
                        addr: a,
                        reply: ReplyType::TimeExceeded,
                    })
                })
                .collect(),
            stop: StopReason::GapLimit,
        }
    }

    fn a(s: &str) -> u32 {
        net_types::parse_ipv4(s).unwrap()
    }

    fn oracle() -> IpToAs {
        IpToAs::from_pairs([
            ("10.1.0.0/16".parse::<Prefix>().unwrap(), Asn(1)),
            ("10.2.0.0/16".parse::<Prefix>().unwrap(), Asn(2)),
        ])
    }

    /// AS1's border address 10.1.0.9 sits on AS2's router: all its
    /// subsequent neighbors are AS2.
    #[test]
    fn detects_border_interface() {
        let traces = [
            tr(
                a("10.2.0.99"),
                &[a("10.1.0.1"), a("10.1.0.9"), a("10.2.0.1")],
            ),
            tr(
                a("10.2.0.98"),
                &[a("10.1.0.2"), a("10.1.0.9"), a("10.2.0.2")],
            ),
        ];
        let mut m = Mapit::build(&traces, &oracle());
        m.run(&MapitConfig::default());
        let links = m.links();
        assert_eq!(links.len(), 1);
        assert_eq!(links[0].iface_addr, a("10.1.0.9"));
        assert_eq!(links[0].origin, Asn(1));
        assert_eq!(links[0].operator, Asn(2));
        assert_eq!(m.operator_of(a("10.1.0.9")), Some(Asn(2)));
        assert_eq!(m.operator_of(a("10.1.0.1")), Some(Asn(1)));
    }

    #[test]
    fn no_border_inside_one_as() {
        let traces = [tr(
            a("10.1.0.99"),
            &[a("10.1.0.1"), a("10.1.0.2"), a("10.1.0.3")],
        )];
        let mut m = Mapit::build(&traces, &oracle());
        m.run(&MapitConfig::default());
        assert!(m.links().is_empty());
    }

    #[test]
    fn plurality_threshold_respected() {
        // 10.1.0.9 has two AS2 successors and two AS1 successors: 50/50,
        // AS2 cannot reach a strict majority... with plurality 0.5 inclusive
        // it ties; lowest-ASN deterministic winner is AS1 == origin → no
        // border.
        let traces = [
            tr(a("10.2.0.99"), &[a("10.1.0.9"), a("10.2.0.1")]),
            tr(a("10.2.0.98"), &[a("10.1.0.9"), a("10.2.0.2")]),
            tr(a("10.1.0.99"), &[a("10.1.0.9"), a("10.1.0.1")]),
            tr(a("10.1.0.98"), &[a("10.1.0.9"), a("10.1.0.2")]),
        ];
        let mut m = Mapit::build(&traces, &oracle());
        m.run(&MapitConfig::default());
        assert!(m.links().is_empty());
    }

    #[test]
    fn refinement_propagates() {
        // Two AS1-space border interfaces (10.1.0.9, 10.1.0.12) flip to
        // operator AS2 from their own successors; 10.1.0.10, whose only
        // successors are those two interfaces, then flips through the
        // refined operators even though both successor *origins* are AS1.
        let traces = [
            tr(
                a("10.2.0.99"),
                &[a("10.1.0.1"), a("10.1.0.9"), a("10.2.0.1")],
            ),
            tr(
                a("10.2.0.98"),
                &[a("10.1.0.2"), a("10.1.0.9"), a("10.2.0.2")],
            ),
            tr(
                a("10.2.0.97"),
                &[a("10.1.0.3"), a("10.1.0.12"), a("10.2.0.3")],
            ),
            tr(
                a("10.2.0.96"),
                &[a("10.1.0.4"), a("10.1.0.12"), a("10.2.0.4")],
            ),
            tr(
                a("10.2.0.95"),
                &[a("10.1.0.5"), a("10.1.0.10"), a("10.1.0.9")],
            ),
            tr(
                a("10.2.0.94"),
                &[a("10.1.0.6"), a("10.1.0.10"), a("10.1.0.12")],
            ),
        ];
        let mut m = Mapit::build(&traces, &oracle());
        m.run(&MapitConfig::default());
        assert_eq!(m.operator_of(a("10.1.0.9")), Some(Asn(2)));
        assert_eq!(m.operator_of(a("10.1.0.12")), Some(Asn(2)));
        assert_eq!(m.operator_of(a("10.1.0.10")), Some(Asn(2)));
        // Single-successor predecessors must NOT cascade.
        assert_eq!(m.operator_of(a("10.1.0.5")), Some(Asn(1)));
    }

    #[test]
    fn single_neighbor_is_not_a_plurality() {
        let traces = [tr(a("10.2.0.99"), &[a("10.1.0.1"), a("10.2.0.1")])];
        let mut m = Mapit::build(&traces, &oracle());
        m.run(&MapitConfig::default());
        assert!(m.links().is_empty());
    }

    #[test]
    fn unannounced_interfaces_ignored() {
        let traces = [tr(
            a("10.2.0.99"),
            &[a("10.1.0.1"), a("192.168.0.1"), a("10.2.0.1")],
        )];
        let mut m = Mapit::build(&traces, &oracle());
        m.run(&MapitConfig::default());
        assert_eq!(m.operator_of(a("192.168.0.1")), None);
        assert_eq!(m.interface_count(), 3);
    }

    #[test]
    fn empty_corpus() {
        let mut m = Mapit::build(&[], &oracle());
        m.run(&MapitConfig::default());
        assert!(m.links().is_empty());
        assert_eq!(m.interface_count(), 0);
    }
}
