//! One benchmark group per paper table/figure: each measures the time to
//! regenerate the artifact from a prepared scenario and prints the resulting
//! rows once, so `cargo bench` doubles as the reproduction harness.

use criterion::{criterion_group, criterion_main, Criterion};
use eval::experiments::{aliases, heuristics, internet_wide, single_vp, stats, vps};

fn bench_table3(c: &mut Criterion) {
    let fx = bench::Fixture::standard();
    let st = stats::corpus_stats(&fx.scenario, &fx.bundle);
    println!("\n{}", st.render());
    c.bench_function("table3_link_labels", |b| {
        b.iter(|| stats::corpus_stats(&fx.scenario, &fx.bundle));
    });
}

fn bench_fig15(c: &mut Criterion) {
    let fx = bench::Fixture::standard();
    let fig = single_vp::fig15(&fx.scenario, 15);
    println!("\n{}", fig.render());
    c.bench_function("fig15_single_vp", |b| {
        b.iter(|| single_vp::fig15(&fx.scenario, 15));
    });
}

fn bench_fig16_17(c: &mut Criterion) {
    let fx = bench::Fixture::standard();
    let wide = internet_wide::run(&fx.scenario, 8, 22);
    println!("\n{}", wide.render());
    c.bench_function("fig16_internet_wide", |b| {
        b.iter(|| internet_wide::run(&fx.scenario, 8, 22));
    });
}

fn bench_fig18_19(c: &mut Criterion) {
    let fx = bench::Fixture::standard();
    let sweep = vps::sweep(&fx.scenario, &[3, 6, 9], 2, 7);
    println!("\n{}", sweep.render());
    let mut g = c.benchmark_group("fig18_vary_vps");
    g.sample_size(10);
    g.bench_function("sweep", |b| {
        b.iter(|| vps::sweep(&fx.scenario, &[3, 6, 9], 2, 7));
    });
    g.finish();
}

fn bench_fig20(c: &mut Criterion) {
    let fx = bench::Fixture::standard();
    let impact = aliases::fig20(&fx.scenario, 8, 31);
    println!("\n{}", impact.render());
    let mut g = c.benchmark_group("fig20_alias_impact");
    g.sample_size(10);
    g.bench_function("midar_vs_kapar", |b| {
        b.iter(|| aliases::fig20(&fx.scenario, 8, 31));
    });
    g.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let fx = bench::Fixture::standard();
    let ab = heuristics::ablation(&fx.scenario, 6, 17);
    println!("\n{}", ab.render());
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("all_variants", |b| {
        b.iter(|| heuristics::ablation(&fx.scenario, 6, 17));
    });
    g.finish();
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(20);
    targets = bench_table3, bench_fig15, bench_fig16_17, bench_fig18_19,
              bench_fig20, bench_ablations
}
criterion_main!(figures);
