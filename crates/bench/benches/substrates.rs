//! Substrate microbenchmarks: the operations every experiment leans on —
//! longest-prefix matching, route-tree computation, traceroute simulation,
//! relationship inference, and alias resolution.

use criterion::{criterion_group, criterion_main, Criterion};
use net_types::{Asn, Prefix, PrefixTrie};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use topo_gen::GeneratorConfig;
use traceroute::sim::{destinations, select_vps, trace_one, ProbeConfig};

fn bench_trie(c: &mut Criterion) {
    // A trie shaped like a real routing table: ~100k prefixes, /8–/24.
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let mut trie = PrefixTrie::new();
    for _ in 0..100_000 {
        let addr: u32 = rng.gen();
        let len = rng.gen_range(8..=24);
        trie.insert(Prefix::new(addr, len), Asn(rng.gen_range(1..65000)));
    }
    let queries: Vec<u32> = (0..1024).map(|_| rng.gen()).collect();
    let mut g = c.benchmark_group("prefix_trie");
    g.throughput(criterion::Throughput::Elements(queries.len() as u64));
    g.bench_function("longest_match_100k", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &q in &queries {
                if trie.longest_match(q).is_some() {
                    hits += 1;
                }
            }
            hits
        });
    });
    g.finish();
}

fn bench_routing(c: &mut Criterion) {
    let net = topo_gen::Internet::generate(GeneratorConfig::tiny(2018));
    let stubs = net.graph.tier_members(topo_gen::Tier::Stub);
    c.bench_function("routing_tree_per_destination", |b| {
        let mut i = 0usize;
        b.iter(|| {
            // Rotate destinations to defeat the cache and measure real
            // tree computation.
            let routing = topo_gen::routing::Routing::new(
                net.graph.relationships.clone(),
                net.addressing.announce_via.clone(),
            );
            let dst = stubs[i % stubs.len()];
            i += 1;
            routing.tree(dst)
        });
    });
}

fn bench_traceroute_sim(c: &mut Criterion) {
    let net = topo_gen::Internet::generate(GeneratorConfig::tiny(2018));
    let cfg = ProbeConfig::default();
    let vps = select_vps(&net, 4, &[], 1);
    let dests = destinations(&net, &cfg);
    let mut g = c.benchmark_group("traceroute_sim");
    g.throughput(criterion::Throughput::Elements(dests.len() as u64));
    g.bench_function("probe_all_dests_one_vp", |b| {
        b.iter(|| {
            dests
                .iter()
                .map(|&d| trace_one(&net, vps[0], d, &cfg).responsive_count())
                .sum::<usize>()
        });
    });
    g.finish();
}

fn bench_rel_inference(c: &mut Criterion) {
    let net = topo_gen::Internet::generate(GeneratorConfig::tiny(2018));
    let rib = net.build_rib();
    let paths = rib.collapsed_paths();
    c.bench_function("as_relationship_inference", |b| {
        b.iter(|| {
            as_rel::infer::infer_relationships(&paths, &as_rel::infer::InferenceConfig::default())
        });
    });
}

fn bench_alias(c: &mut Criterion) {
    let fx = bench::Fixture::standard();
    let observed = alias::observed_addresses(&fx.bundle.traces);
    let mut g = c.benchmark_group("alias_resolution");
    g.bench_function("midar_style", |b| {
        b.iter(|| alias::resolve_midar(&fx.scenario.net, &observed, 0.9, 7));
    });
    g.bench_function("kapar_style", |b| {
        b.iter(|| alias::resolve_kapar(&fx.bundle.traces, &fx.bundle.aliases));
    });
    g.finish();
}

criterion_group! {
    name = substrates;
    config = Criterion::default().sample_size(20);
    targets = bench_trie, bench_routing, bench_traceroute_sim,
              bench_rel_inference, bench_alias
}
criterion_main!(substrates);
