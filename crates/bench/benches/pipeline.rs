//! End-to-end pipeline benchmarks: each bdrmapIT phase in isolation and the
//! whole algorithm at two scales — the "efficient for Internet-scale graph
//! processing" claim made measurable.

use as_rel::CustomerCones;
use bdrmapit_core::{AnnotationState, Bdrmapit, Config, IrGraph};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use topo_gen::GeneratorConfig;

fn bench_phases(c: &mut Criterion) {
    let fx = bench::Fixture::standard();
    let s = &fx.scenario;
    let cones = CustomerCones::compute(&s.rels);
    let cfg = Config::default();

    let mut g = c.benchmark_group("phases");
    g.bench_function("phase1_construct_graph", |b| {
        b.iter(|| {
            IrGraph::build(
                &fx.bundle.traces,
                &fx.bundle.aliases,
                &s.ip2as,
                &cfg,
                &s.rels,
                &cones,
            )
        });
    });

    let graph = IrGraph::build(
        &fx.bundle.traces,
        &fx.bundle.aliases,
        &s.ip2as,
        &cfg,
        &s.rels,
        &cones,
    );
    g.bench_function("phase2_last_hops", |b| {
        b.iter(|| {
            let mut state = AnnotationState::new(&graph);
            bdrmapit_core::lasthop::annotate_last_hops(&graph, &s.rels, &cones, &mut state);
            state
        });
    });
    g.bench_function("phase3_refinement", |b| {
        b.iter(|| {
            let mut state = AnnotationState::new(&graph);
            bdrmapit_core::lasthop::annotate_last_hops(&graph, &s.rels, &cones, &mut state);
            bdrmapit_core::refine::refine(&graph, &s.rels, &cones, &cfg, &mut state);
            state
        });
    });
    g.finish();
}

/// Serial vs. parallel refinement on one prebuilt graph: the state after
/// phase 2 is cloned into every timing iteration, so the numbers isolate
/// `refine` itself. The 4-thread point is the acceptance gauge for the
/// sharded engine (≥1.5× over serial on a 4-core runner); results are
/// bit-identical across the sweep, so this measures pure scheduling.
fn bench_refine_threads(c: &mut Criterion) {
    let fx = bench::Fixture::standard();
    let s = &fx.scenario;
    let cones = CustomerCones::compute(&s.rels);
    let base = Config::default();
    let graph = IrGraph::build(
        &fx.bundle.traces,
        &fx.bundle.aliases,
        &s.ip2as,
        &base,
        &s.rels,
        &cones,
    );
    let mut annotated = AnnotationState::new(&graph);
    bdrmapit_core::lasthop::annotate_last_hops(&graph, &s.rels, &cones, &mut annotated);

    let mut g = c.benchmark_group("phase3_refine");
    for threads in [1usize, 2, 4] {
        let cfg = Config {
            threads,
            ..Config::default()
        };
        g.bench_with_input(BenchmarkId::new("threads", threads), &cfg, |b, cfg| {
            b.iter(|| {
                let mut state = annotated.clone();
                bdrmapit_core::refine::refine(&graph, &s.rels, &cones, cfg, &mut state);
                state
            });
        });
    }
    g.finish();
}

/// Front-end thread sweep: the sharded probe campaign and the interned
/// phase-1 graph build at 1/2/4 workers. Output is bit-identical across the
/// sweep (enforced by `tests/front_end_determinism.rs`), so — as with the
/// refinement sweep above — this measures pure scheduling.
fn bench_front_end_threads(c: &mut Criterion) {
    let fx = bench::Fixture::standard();
    let s = &fx.scenario;
    let cones = CustomerCones::compute(&s.rels);
    let probe_cfg = traceroute::sim::ProbeConfig::default();

    let mut g = c.benchmark_group("front_end");
    for threads in [1usize, 2, 4] {
        g.bench_with_input(
            BenchmarkId::new("campaign_threads", threads),
            &threads,
            |b, &t| {
                b.iter(|| {
                    traceroute::sim::probe_campaign_sharded(&s.net, &fx.bundle.vps, &probe_cfg, t)
                });
            },
        );
        let cfg = Config {
            threads,
            ..Config::default()
        };
        g.bench_with_input(
            BenchmarkId::new("graph_threads", threads),
            &cfg,
            |b, cfg| {
                b.iter(|| {
                    IrGraph::build(
                        &fx.bundle.traces,
                        &fx.bundle.aliases,
                        &s.ip2as,
                        cfg,
                        &s.rels,
                        &cones,
                    )
                });
            },
        );
    }
    g.finish();
}

fn bench_full_algorithm(c: &mut Criterion) {
    let mut g = c.benchmark_group("bdrmapit_end_to_end");
    g.sample_size(10);
    for (label, cfg, vps) in [
        ("tiny", GeneratorConfig::tiny(2018), 8),
        (
            "default",
            GeneratorConfig {
                seed: 2018,
                ..GeneratorConfig::default()
            },
            12,
        ),
    ] {
        let fx = bench::Fixture::at(cfg, vps);
        let runner = Bdrmapit::new(Config::default());
        g.bench_with_input(BenchmarkId::from_parameter(label), &fx, |b, fx| {
            b.iter(|| {
                runner.run(
                    &fx.bundle.traces,
                    &fx.bundle.aliases,
                    &fx.scenario.ip2as,
                    &fx.scenario.rels,
                )
            });
        });
    }
    g.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let fx = bench::Fixture::standard();
    let mut g = c.benchmark_group("baselines");
    g.bench_function("mapit", |b| {
        b.iter(|| {
            let mut m = mapit::Mapit::build(&fx.bundle.traces, &fx.scenario.ip2as);
            m.run(&mapit::MapitConfig::default());
            m.links()
        });
    });
    let target = fx.scenario.validation.large_access;
    let single = fx.scenario.single_vp_campaign(target, 3);
    g.bench_function("bdrmap_single_vp", |b| {
        b.iter(|| {
            bdrmap::run(
                &single.traces,
                &single.aliases,
                &fx.scenario.ip2as,
                &fx.scenario.rels,
                Some(target),
            )
        });
    });
    g.finish();
}

criterion_group! {
    name = pipeline;
    config = Criterion::default().sample_size(20);
    targets = bench_phases, bench_refine_threads, bench_front_end_threads, bench_full_algorithm, bench_baselines
}
criterion_main!(pipeline);
