//! Writes `BENCH_pipeline.json`: per-phase wall times and iteration counts
//! for a standard tiny-scale pipeline run, sourced from the observability
//! [`RunReport`](obs::RunReport).
//!
//! Unlike the Criterion benches (statistical, minutes), this is a single
//! instrumented run (seconds) — cheap enough for CI to produce on every
//! push, so the perf trajectory of each phase accumulates as build
//! artifacts. Usage: `bench-pipeline [OUTPUT_PATH]` (default
//! `BENCH_pipeline.json` in the current directory).

#![forbid(unsafe_code)]

use bdrmapit_core::Config;
use eval::experiments::run_bdrmapit;
use eval::Scenario;
use obs::names;
use serde::Serialize;
use std::process::ExitCode;
use topo_gen::GeneratorConfig;

const SEED: u64 = 2018;
const VPS: usize = 8;

/// The benchmark document: run parameters, headline numbers, and the full
/// run report (whose `phases` map carries the per-phase wall times).
#[derive(Serialize)]
struct BenchDoc {
    schema: &'static str,
    scale: &'static str,
    seed: u64,
    vps: usize,
    iterations: u64,
    routers_annotated: u64,
    interdomain_links: usize,
    report: obs::RunReport,
}

fn main() -> ExitCode {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pipeline.json".to_string());

    let rec = obs::Recorder::new(false);
    let scenario = Scenario::build_with_obs(GeneratorConfig::tiny(SEED), rec.clone());
    let bundle = scenario.campaign(VPS, true, SEED);
    let result = run_bdrmapit(&scenario, &bundle, Config::default());
    let report = rec.report();

    if let Err(e) = report.validate() {
        eprintln!("bench-pipeline: incomplete run report: {e}");
        return ExitCode::FAILURE;
    }

    let counter = |name: &str| report.counters.get(name).copied().unwrap_or(0);
    let doc = BenchDoc {
        schema: "bdrmapit.bench-pipeline/v1",
        scale: "tiny",
        seed: SEED,
        vps: VPS,
        iterations: counter(names::REFINE_ITERATIONS),
        routers_annotated: counter(names::REFINE_ROUTERS_ANNOTATED),
        interdomain_links: result.interdomain_links().len(),
        report,
    };
    let text = serde_json::to_string_pretty(&doc).expect("bench document serializes");
    if let Err(e) = std::fs::write(&out, text) {
        eprintln!("bench-pipeline: writing {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");
    ExitCode::SUCCESS
}
