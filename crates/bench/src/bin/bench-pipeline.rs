//! Writes `BENCH_pipeline.json` (`bdrmapit.bench-pipeline/v3`): a thread
//! sweep of the instrumented pipeline across one or more scales, with
//! per-phase wall times, `speedup` and `end_to_end` sections, a structural
//! output hash per run, and the scale at which the worker pool's
//! end-to-end speedup first crosses 1.0x.
//!
//! Unlike the Criterion benches (statistical, minutes), this is a handful
//! of instrumented runs — cheap enough for CI to produce on every push, so
//! the perf trajectory of each phase accumulates as build artifacts. The
//! output hash doubles as a determinism gate: the process exits nonzero if
//! any thread count's output diverges from the serial run, so the CI
//! `bench-sweep` / `bench-large` jobs fail loudly on a regression.
//!
//! v3 schema changes vs v2:
//! - topology/RIB/relationship generation happens ONCE per scale, outside
//!   the timed region (v2 re-generated the corpus topology inside every
//!   thread-sweep iteration, polluting wall-clock totals); its cost is
//!   reported separately as `generate_ms`
//! - every thread run dispatches campaign, graph build, and refinement on
//!   ONE shared worker pool, and reports that pool's cumulative scheduling
//!   stats (tasks, steals, batches, busy time)
//! - an `end_to_end` speedup series (sum of all timed phases) joins the
//!   per-phase ones, and the top-level `crossover` records the first swept
//!   scale where end-to-end speedup at 2 threads exceeds 1.0
//! - scales and thread counts are selectable from the command line, and
//!   `--contract T:MIN` turns a minimum end-to-end speedup into an exit
//!   code (the CI bench-large gate)
//!
//! Usage:
//!   bench-pipeline [--scales S1,S2] [--threads T1,T2] [--contract T:MIN]
//!                  [OUTPUT_PATH]
//! Defaults: `--scales tiny,small --threads 1,2,4,8 BENCH_pipeline.json`.
//! Scales: tiny | small | default | itdk | large (large is the ~1e5-router
//! speedup-contract scale; release mode strongly advised).

#![forbid(unsafe_code)]

use bdrmapit_core::{Annotated, Config};
use eval::experiments::run_bdrmapit;
use eval::Scenario;
use obs::names;
use serde::Serialize;
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::sync::Arc;
use topo_gen::GeneratorConfig;

const SEED: u64 = 2018;
const DEFAULT_THREADS: [usize; 4] = [1, 2, 4, 8];
const DEFAULT_SCALES: [&str; 2] = ["tiny", "small"];
/// The phases whose scaling the sweep reports individually: the two
/// front-end phases, their combination, and the refinement engine.
const SWEPT_PHASES: [&str; 3] = [
    names::PHASE_TRACEROUTE,
    names::PHASE_GRAPH,
    names::PHASE_REFINE,
];
const FRONT_END_COMBINED: &str = "front_end_combined";
/// Sum of every timed phase (campaign through refinement; generation is
/// outside the timed region by construction).
const END_TO_END: &str = "end_to_end";
/// The phases every per-run report must cover. `topo.generate` is absent
/// by design (hoisted out of the sweep), so `RunReport::validate` — which
/// demands it — does not apply; this is the sweep's own mandatory list.
const RUN_PHASES: [&str; 4] = [
    names::PHASE_TRACEROUTE,
    names::PHASE_ALIAS,
    names::PHASE_GRAPH,
    names::PHASE_REFINE,
];
/// The thread count the crossover scale is judged at.
const CROSSOVER_THREADS: usize = 2;

/// The benchmark document: run parameters plus one sweep per scale.
#[derive(Serialize)]
struct BenchDoc {
    schema: &'static str,
    seed: u64,
    threads_swept: Vec<usize>,
    scales: Vec<ScaleDoc>,
    crossover: CrossoverDoc,
}

/// The first swept scale whose end-to-end speedup at `threads` exceeds
/// 1.0 — i.e. where the worker pool starts paying for itself. `None` when
/// no swept scale crosses (expected on single-core hosts, where the sweep
/// measures pure scheduling overhead).
#[derive(Serialize)]
struct CrossoverDoc {
    threads: usize,
    scale: Option<String>,
}

/// One scale's thread sweep.
#[derive(Serialize)]
struct ScaleDoc {
    scale: String,
    vps: usize,
    /// Wall time of the untimed-region setup (topology + RIB + IP→AS +
    /// relationship inference), run once and reused by every thread run.
    generate_ms: f64,
    iterations: u64,
    routers_annotated: u64,
    interdomain_links: usize,
    /// Structural hash of the serial (threads = 1) run's output.
    output_hash: String,
    /// True iff every swept thread count reproduced `output_hash`.
    hashes_consistent: bool,
    /// Wall(1) / wall(N) per phase, keyed phase → thread count.
    speedup: BTreeMap<&'static str, BTreeMap<String, f64>>,
    runs: Vec<RunDoc>,
    /// Full run report of the serial baseline.
    baseline_report: obs::RunReport,
}

/// One pipeline run at a fixed thread count.
#[derive(Serialize)]
struct RunDoc {
    threads: usize,
    output_hash: String,
    /// Sum of every timed phase's wall time.
    end_to_end_ms: f64,
    phase_wall_ms: BTreeMap<String, f64>,
    /// Cumulative scheduling stats of the run's shared worker pool.
    pool: PoolDoc,
}

/// The shared pool's counters for one run.
#[derive(Serialize)]
struct PoolDoc {
    tasks: u64,
    steals: u64,
    batches: u64,
    busy_ms: f64,
}

/// The observable output of one pipeline run, in canonical (sorted-map,
/// fixed field order) JSON form for hashing.
#[derive(Serialize)]
struct OutputDoc<'a> {
    routers: Vec<(u32, net_types::Asn)>,
    links: Vec<bdrmapit_core::InferredLink>,
    ifaces: &'a [net_types::Asn],
    convergence: &'a [Vec<u64>],
    counters: &'a BTreeMap<String, u64>,
    histograms: &'a BTreeMap<String, obs::HistogramSummary>,
}

/// FNV-1a over a canonical JSON rendering of everything downstream
/// consumers can observe: annotations, links, convergence traces, and the
/// deterministic counter/histogram slice of the run report. Wall times and
/// exec counters (worker slots, steal counts) are excluded by
/// construction — they legitimately vary with the thread count.
fn output_hash(result: &Annotated, report: &obs::RunReport) -> u64 {
    let doc = OutputDoc {
        routers: result.router_annotations(),
        links: result.interdomain_links(),
        ifaces: &result.state.iface,
        convergence: &result.state.convergence_traces,
        counters: &report.counters,
        histograms: &report.histograms,
    };
    let text = serde_json::to_string(&doc).expect("output document serializes");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Resolves a scale name to its generator config and default VP count.
fn scale_config(name: &str) -> Option<(GeneratorConfig, usize)> {
    Some(match name {
        "tiny" => (GeneratorConfig::tiny(SEED), 8),
        "small" => (GeneratorConfig::small(SEED), 12),
        "default" => (
            GeneratorConfig {
                seed: SEED,
                ..GeneratorConfig::default()
            },
            20,
        ),
        "itdk" => (GeneratorConfig::itdk_scale(SEED), 60),
        "large" => (GeneratorConfig::large(SEED), 109),
        _ => return None,
    })
}

/// One instrumented pipeline run on a pre-built scenario: installs a fresh
/// recorder and a shared `threads`-sized worker pool, then runs campaign →
/// alias → graph → lasthop → refine. Topology generation happened once,
/// before any run; only pipeline phases land in this run's report.
fn run_once(
    scenario: &mut Scenario,
    vps: usize,
    threads: usize,
) -> (Annotated, obs::RunReport, PoolDoc) {
    let rec = obs::Recorder::new(false);
    let wp = Arc::new(pool::WorkerPool::with_recorder(threads, rec.clone()));
    scenario.obs = rec.clone();
    scenario.threads = threads;
    scenario.pool = Some(Arc::clone(&wp));
    let bundle = scenario.campaign(vps, true, SEED);
    let cfg = Config {
        threads,
        ..Config::default()
    };
    let result = run_bdrmapit(scenario, &bundle, cfg);
    let stats = wp.stats();
    let pool_doc = PoolDoc {
        tasks: stats.tasks,
        steals: stats.steals,
        batches: stats.batches,
        busy_ms: stats.busy_nanos as f64 / 1e6,
    };
    (result, rec.report(), pool_doc)
}

/// The sweep's own report validation (see [`RUN_PHASES`]).
fn validate_run(report: &obs::RunReport) -> Result<(), String> {
    for phase in RUN_PHASES {
        if !report.phases.contains_key(phase) {
            return Err(format!("phase {phase} missing from run report"));
        }
    }
    match report.counters.get(names::REFINE_ITERATIONS) {
        Some(&n) if n > 0 => Ok(()),
        _ => Err("refine.iterations is missing or zero".into()),
    }
}

fn sweep_scale(scale: &str, threads_swept: &[usize]) -> Result<ScaleDoc, String> {
    let (gen_cfg, vps) = scale_config(scale).ok_or_else(|| format!("unknown scale {scale:?}"))?;

    // Generation is deliberately OUTSIDE the timed sweep: one scenario per
    // scale, reused by every thread run. Its own recorder captures the
    // setup cost for the report but never mixes into per-run phase times.
    let setup_rec = obs::Recorder::new(false);
    let mut scenario = Scenario::build_with_obs(gen_cfg, setup_rec.clone());
    let setup_report = setup_rec.report();
    let generate_ms = setup_report
        .phases
        .get(names::PHASE_TOPO)
        .map_or(0.0, |s| s.wall_ms);

    let mut runs = Vec::new();
    let mut baseline: Option<(Annotated, obs::RunReport)> = None;
    for &threads in threads_swept {
        let (result, report, pool_doc) = run_once(&mut scenario, vps, threads);
        validate_run(&report)
            .map_err(|e| format!("{scale} threads={threads}: incomplete run report: {e}"))?;
        let phase_wall_ms: BTreeMap<String, f64> = report
            .phases
            .iter()
            .map(|(name, stats)| (name.clone(), stats.wall_ms))
            .collect();
        runs.push(RunDoc {
            threads,
            output_hash: format!("{:#018x}", output_hash(&result, &report)),
            end_to_end_ms: phase_wall_ms.values().sum(),
            phase_wall_ms,
            pool: pool_doc,
        });
        if baseline.is_none() {
            baseline = Some((result, report));
        }
    }
    let (result, report) = baseline.expect("sweep ran at least once");

    let serial_hash = runs[0].output_hash.clone();
    let hashes_consistent = runs.iter().all(|r| r.output_hash == serial_hash);

    // Speedup = serial wall time over parallel wall time, per swept phase
    // plus the combined front-end and the all-phases end-to-end series.
    let wall = |run: &RunDoc, phase: &str| run.phase_wall_ms.get(phase).copied().unwrap_or(0.0);
    let front_end =
        |run: &RunDoc| wall(run, names::PHASE_TRACEROUTE) + wall(run, names::PHASE_GRAPH);
    let mut speedup: BTreeMap<&'static str, BTreeMap<String, f64>> = BTreeMap::new();
    for run in &runs {
        for phase in SWEPT_PHASES {
            let base = wall(&runs[0], phase);
            let now = wall(run, phase);
            if now > 0.0 {
                speedup
                    .entry(phase)
                    .or_default()
                    .insert(run.threads.to_string(), base / now);
            }
        }
        if front_end(run) > 0.0 {
            speedup.entry(FRONT_END_COMBINED).or_default().insert(
                run.threads.to_string(),
                front_end(&runs[0]) / front_end(run),
            );
        }
        if run.end_to_end_ms > 0.0 {
            speedup.entry(END_TO_END).or_default().insert(
                run.threads.to_string(),
                runs[0].end_to_end_ms / run.end_to_end_ms,
            );
        }
    }

    let counter = |name: &str| report.counters.get(name).copied().unwrap_or(0);
    Ok(ScaleDoc {
        scale: scale.to_string(),
        vps,
        generate_ms,
        iterations: counter(names::REFINE_ITERATIONS),
        routers_annotated: counter(names::REFINE_ROUTERS_ANNOTATED),
        interdomain_links: result.interdomain_links().len(),
        output_hash: serial_hash,
        hashes_consistent,
        speedup,
        runs,
        baseline_report: report,
    })
}

/// A `--contract T:MIN` clause: end-to-end speedup at `threads` must reach
/// `min_speedup` on every swept scale, or the process exits nonzero.
#[derive(Clone, Copy, Debug)]
struct Contract {
    threads: usize,
    min_speedup: f64,
}

/// Parsed command line; see the module docs for the grammar.
struct Args {
    scales: Vec<String>,
    threads: Vec<usize>,
    contracts: Vec<Contract>,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut scales: Vec<String> = DEFAULT_SCALES.iter().map(ToString::to_string).collect();
    let mut threads = DEFAULT_THREADS.to_vec();
    let mut contracts = Vec::new();
    let mut out = "BENCH_pipeline.json".to_string();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scales" => {
                let v = it.next().ok_or("--scales needs a comma-separated list")?;
                scales = v.split(',').map(|s| s.trim().to_string()).collect();
                for s in &scales {
                    scale_config(s).ok_or_else(|| format!("unknown scale {s:?}"))?;
                }
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a comma-separated list")?;
                threads = v
                    .split(',')
                    .map(|t| {
                        t.trim()
                            .parse::<usize>()
                            .map_err(|_| format!("bad thread count {t:?}"))
                    })
                    .collect::<Result<_, _>>()?;
                if threads.first() != Some(&1) {
                    return Err("--threads must start with 1 (the serial baseline)".into());
                }
            }
            "--contract" => {
                let v = it.next().ok_or("--contract needs T:MIN (e.g. 2:1.0)")?;
                let (t, m) = v
                    .split_once(':')
                    .ok_or_else(|| format!("bad contract {v:?}: expected T:MIN"))?;
                contracts.push(Contract {
                    threads: t
                        .parse()
                        .map_err(|_| format!("bad contract threads {t:?}"))?,
                    min_speedup: m
                        .parse()
                        .map_err(|_| format!("bad contract speedup {m:?}"))?,
                });
            }
            other if other.starts_with("--") => return Err(format!("unknown flag {other:?}")),
            path => out = path.to_string(),
        }
    }
    Ok(Args {
        scales,
        threads,
        contracts,
        out,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench-pipeline: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut scales = Vec::new();
    for scale in &args.scales {
        match sweep_scale(scale, &args.threads) {
            Ok(doc) => scales.push(doc),
            Err(e) => {
                eprintln!("bench-pipeline: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let end_to_end_at = |doc: &ScaleDoc, threads: usize| -> Option<f64> {
        doc.speedup
            .get(END_TO_END)?
            .get(&threads.to_string())
            .copied()
    };
    let crossover = CrossoverDoc {
        threads: CROSSOVER_THREADS,
        scale: scales
            .iter()
            .find(|s| end_to_end_at(s, CROSSOVER_THREADS).is_some_and(|x| x > 1.0))
            .map(|s| s.scale.clone()),
    };

    let doc = BenchDoc {
        schema: "bdrmapit.bench-pipeline/v3",
        seed: SEED,
        threads_swept: args.threads.clone(),
        scales,
        crossover,
    };
    let text = serde_json::to_string_pretty(&doc).expect("bench document serializes");
    if let Err(e) = std::fs::write(&args.out, text) {
        eprintln!("bench-pipeline: writing {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("wrote {}", args.out);

    // Determinism gate: a thread count that changed the output is a bug,
    // and CI must see it even though the artifact was written above.
    for scale in &doc.scales {
        if !scale.hashes_consistent {
            eprintln!(
                "bench-pipeline: output hashes diverged across the thread sweep at scale {} \
                 (serial {}): determinism contract violated",
                scale.scale, scale.output_hash
            );
            return ExitCode::FAILURE;
        }
        println!(
            "{}: output {} identical across threads {:?}",
            scale.scale, scale.output_hash, args.threads
        );
    }

    // Speedup contract gate (the CI bench-large job's teeth).
    for c in &args.contracts {
        for scale in &doc.scales {
            match end_to_end_at(scale, c.threads) {
                Some(x) if x >= c.min_speedup => {
                    println!(
                        "{}: end-to-end speedup @{} threads = {x:.2}x (contract >= {:.2}x)",
                        scale.scale, c.threads, c.min_speedup
                    );
                }
                Some(x) => {
                    eprintln!(
                        "bench-pipeline: scale {} end-to-end speedup @{} threads = {x:.2}x, \
                         below the {:.2}x contract",
                        scale.scale, c.threads, c.min_speedup
                    );
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!(
                        "bench-pipeline: contract names {} threads but the sweep did not run it",
                        c.threads
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    ExitCode::SUCCESS
}
