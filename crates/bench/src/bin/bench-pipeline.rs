//! Writes `BENCH_pipeline.json` (`bdrmapit.bench-pipeline/v2`): a thread
//! sweep (1/2/4/8 workers) of the instrumented pipeline at two scales, with
//! per-phase wall times, a `speedup` section for the parallelized phases,
//! and a structural output hash per run.
//!
//! Unlike the Criterion benches (statistical, minutes), this is a handful
//! of instrumented runs (seconds) — cheap enough for CI to produce on every
//! push, so the perf trajectory of each phase accumulates as build
//! artifacts. The output hash doubles as a determinism gate: the process
//! exits nonzero if any thread count's output diverges from the serial run,
//! so the CI `bench-sweep` job fails loudly on a determinism regression.
//!
//! Usage: `bench-pipeline [OUTPUT_PATH]` (default `BENCH_pipeline.json` in
//! the current directory).

#![forbid(unsafe_code)]

use bdrmapit_core::{Annotated, Config};
use eval::experiments::run_bdrmapit;
use eval::Scenario;
use obs::names;
use serde::Serialize;
use std::collections::BTreeMap;
use std::process::ExitCode;
use topo_gen::GeneratorConfig;

const SEED: u64 = 2018;
const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];
/// The phases whose scaling the sweep reports: the two front-end phases
/// parallelized here, their combination, and the PR-1 refinement engine.
const SWEPT_PHASES: [&str; 3] = [
    names::PHASE_TRACEROUTE,
    names::PHASE_GRAPH,
    names::PHASE_REFINE,
];
const FRONT_END_COMBINED: &str = "front_end_combined";

/// The benchmark document: run parameters plus one sweep per scale.
#[derive(Serialize)]
struct BenchDoc {
    schema: &'static str,
    seed: u64,
    threads_swept: Vec<usize>,
    scales: Vec<ScaleDoc>,
}

/// One scale's thread sweep.
#[derive(Serialize)]
struct ScaleDoc {
    scale: &'static str,
    vps: usize,
    iterations: u64,
    routers_annotated: u64,
    interdomain_links: usize,
    /// Structural hash of the serial (threads = 1) run's output.
    output_hash: String,
    /// True iff every swept thread count reproduced `output_hash`.
    hashes_consistent: bool,
    /// Wall(1) / wall(N) per phase, keyed phase → thread count.
    speedup: BTreeMap<&'static str, BTreeMap<String, f64>>,
    runs: Vec<RunDoc>,
    /// Full run report of the serial baseline.
    baseline_report: obs::RunReport,
}

/// One pipeline run at a fixed thread count.
#[derive(Serialize)]
struct RunDoc {
    threads: usize,
    output_hash: String,
    phase_wall_ms: BTreeMap<String, f64>,
}

/// The observable output of one pipeline run, in canonical (sorted-map,
/// fixed field order) JSON form for hashing.
#[derive(Serialize)]
struct OutputDoc<'a> {
    routers: Vec<(u32, net_types::Asn)>,
    links: Vec<bdrmapit_core::InferredLink>,
    ifaces: &'a [net_types::Asn],
    convergence: &'a [Vec<u64>],
    counters: &'a BTreeMap<String, u64>,
    histograms: &'a BTreeMap<String, obs::HistogramSummary>,
}

/// FNV-1a over a canonical JSON rendering of everything downstream
/// consumers can observe: annotations, links, convergence traces, and the
/// deterministic counter/histogram slice of the run report. Wall times and
/// exec counters (worker slots, cache hit splits) are excluded by
/// construction — they legitimately vary with the thread count.
fn output_hash(result: &Annotated, report: &obs::RunReport) -> u64 {
    let doc = OutputDoc {
        routers: result.router_annotations(),
        links: result.interdomain_links(),
        ifaces: &result.state.iface,
        convergence: &result.state.convergence_traces,
        counters: &report.counters,
        histograms: &report.histograms,
    };
    let text = serde_json::to_string(&doc).expect("output document serializes");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One instrumented pipeline run; returns the annotated result and report.
fn run_once(gen_cfg: GeneratorConfig, vps: usize, threads: usize) -> (Annotated, obs::RunReport) {
    let rec = obs::Recorder::new(false);
    let mut scenario = Scenario::build_with_obs(gen_cfg, rec.clone());
    scenario.threads = threads;
    let bundle = scenario.campaign(vps, true, SEED);
    let cfg = Config {
        threads,
        ..Config::default()
    };
    let result = run_bdrmapit(&scenario, &bundle, cfg);
    (result, rec.report())
}

fn sweep_scale(
    scale: &'static str,
    gen_cfg: &GeneratorConfig,
    vps: usize,
) -> Result<ScaleDoc, String> {
    let mut runs = Vec::new();
    let mut baseline: Option<(Annotated, obs::RunReport)> = None;
    for &threads in &THREAD_SWEEP {
        let (result, report) = run_once(gen_cfg.clone(), vps, threads);
        report
            .validate()
            .map_err(|e| format!("{scale} threads={threads}: incomplete run report: {e}"))?;
        let phase_wall_ms = report
            .phases
            .iter()
            .map(|(name, stats)| (name.clone(), stats.wall_ms))
            .collect();
        runs.push(RunDoc {
            threads,
            output_hash: format!("{:#018x}", output_hash(&result, &report)),
            phase_wall_ms,
        });
        if baseline.is_none() {
            baseline = Some((result, report));
        }
    }
    let (result, report) = baseline.expect("sweep ran at least once");

    let serial_hash = runs[0].output_hash.clone();
    let hashes_consistent = runs.iter().all(|r| r.output_hash == serial_hash);

    // Speedup = serial wall time over parallel wall time, per swept phase
    // plus the combined front-end (campaign + graph build together).
    let wall = |run: &RunDoc, phase: &str| run.phase_wall_ms.get(phase).copied().unwrap_or(0.0);
    let front_end =
        |run: &RunDoc| wall(run, names::PHASE_TRACEROUTE) + wall(run, names::PHASE_GRAPH);
    let mut speedup: BTreeMap<&'static str, BTreeMap<String, f64>> = BTreeMap::new();
    for run in &runs {
        for phase in SWEPT_PHASES {
            let base = wall(&runs[0], phase);
            let now = wall(run, phase);
            if now > 0.0 {
                speedup
                    .entry(phase)
                    .or_default()
                    .insert(run.threads.to_string(), base / now);
            }
        }
        let now = front_end(run);
        if now > 0.0 {
            speedup
                .entry(FRONT_END_COMBINED)
                .or_default()
                .insert(run.threads.to_string(), front_end(&runs[0]) / now);
        }
    }

    let counter = |name: &str| report.counters.get(name).copied().unwrap_or(0);
    Ok(ScaleDoc {
        scale,
        vps,
        iterations: counter(names::REFINE_ITERATIONS),
        routers_annotated: counter(names::REFINE_ROUTERS_ANNOTATED),
        interdomain_links: result.interdomain_links().len(),
        output_hash: serial_hash,
        hashes_consistent,
        speedup,
        runs,
        baseline_report: report,
    })
}

fn main() -> ExitCode {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pipeline.json".to_string());

    let mut scales = Vec::new();
    for (scale, gen_cfg, vps) in [
        ("tiny", GeneratorConfig::tiny(SEED), 8),
        ("small", GeneratorConfig::small(SEED), 12),
    ] {
        match sweep_scale(scale, &gen_cfg, vps) {
            Ok(doc) => scales.push(doc),
            Err(e) => {
                eprintln!("bench-pipeline: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let doc = BenchDoc {
        schema: "bdrmapit.bench-pipeline/v2",
        seed: SEED,
        threads_swept: THREAD_SWEEP.to_vec(),
        scales,
    };
    let text = serde_json::to_string_pretty(&doc).expect("bench document serializes");
    if let Err(e) = std::fs::write(&out, text) {
        eprintln!("bench-pipeline: writing {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");

    // Determinism gate: a thread count that changed the output is a bug,
    // and CI must see it even though the artifact was written above.
    for scale in &doc.scales {
        if !scale.hashes_consistent {
            eprintln!(
                "bench-pipeline: output hashes diverged across the thread sweep at scale {} \
                 (serial {}): determinism contract violated",
                scale.scale, scale.output_hash
            );
            return ExitCode::FAILURE;
        }
        println!(
            "{}: output {} identical across threads {:?}",
            scale.scale, scale.output_hash, THREAD_SWEEP
        );
    }
    ExitCode::SUCCESS
}
