//! Writes `BENCH_serve.json`: throughput and latency percentiles for the
//! snapshot query service under concurrent load.
//!
//! The harness runs the synthetic pipeline at tiny scale, freezes the result
//! into an in-memory snapshot, serves it on a loopback port, and drives it
//! with several persistent-connection clients issuing a mixed verb workload.
//! Latency is measured per request through the observability clock
//! ([`obs::MonotonicClock`] — the workspace's one sanctioned wall-clock
//! read), so this binary introduces no new nondeterminism call sites.
//! Usage: `bench-serve [OUTPUT_PATH]` (default `BENCH_serve.json`).

#![forbid(unsafe_code)]

use bdrmapit_core::Config;
use eval::experiments::run_bdrmapit;
use eval::Scenario;
use obs::Clock;
use serde::Serialize;
use serve::{Client, Request, Server, ServerConfig};
use snapshot::{Snapshot, SnapshotData};
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use topo_gen::GeneratorConfig;

const SEED: u64 = 2018;
const VPS: usize = 8;
const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 2_500;

/// The benchmark document: workload parameters, headline numbers, and the
/// server-side run report (request/connection counters).
#[derive(Serialize)]
struct BenchDoc {
    schema: &'static str,
    scale: &'static str,
    seed: u64,
    clients: usize,
    requests_per_client: usize,
    total_requests: usize,
    errors: usize,
    wall_ms: f64,
    throughput_rps: f64,
    p50_us: f64,
    p99_us: f64,
    snapshot_load_ms: f64,
    /// The server's own view of the run: the `stats` verb's answer after
    /// the load completes, carrying uptime and per-verb p50/p99.
    server_stats: serve::StatsJson,
    server_report: obs::RunReport,
}

/// The verb mix one client cycles through: dominated by point lookups (the
/// hot path), with the heavier verbs sampled in.
fn request_for(snap: &Snapshot, i: usize) -> Request {
    let anns = &snap.data().annotations;
    let ann = anns[i % anns.len()];
    match i % 10 {
        0..=5 => {
            let mut r = Request::verb("lookup_addr");
            r.addr = Some(net_types::format_ipv4(ann.addr));
            r
        }
        6 | 7 => {
            let mut r = Request::verb("lookup_prefix");
            r.addr = Some(net_types::format_ipv4(ann.addr));
            r
        }
        8 => {
            let mut r = Request::verb("router");
            r.ir = Some(ann.ir);
            r
        }
        _ => {
            let mut r = Request::verb("links_of_as");
            r.asn = Some(ann.asn.0);
            r
        }
    }
}

fn percentile_us(sorted_nanos: &[u64], p: f64) -> f64 {
    if sorted_nanos.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_nanos.len() - 1) as f64 * p).round() as usize;
    sorted_nanos[rank] as f64 / 1_000.0
}

fn main() -> ExitCode {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    let clock = obs::MonotonicClock::new();

    // Produce a realistic snapshot: tiny-scale pipeline, frozen to bytes,
    // then loaded back through the real parse+index path (timed).
    let scenario = Scenario::build(GeneratorConfig::tiny(SEED));
    let bundle = scenario.campaign(VPS, true, SEED);
    let result = run_bdrmapit(&scenario, &bundle, Config::default());
    let data = SnapshotData::from_annotated(&result, &scenario.rib.origin_table());
    let bytes = snapshot::to_bytes(&data);
    let load_start = clock.now_nanos();
    let snap = match Snapshot::from_bytes(&bytes) {
        Ok(s) => Arc::new(s),
        Err(e) => {
            eprintln!("bench-serve: snapshot does not load: {e}");
            return ExitCode::FAILURE;
        }
    };
    let snapshot_load_ms = (clock.now_nanos() - load_start) as f64 / 1e6;

    let rec = obs::Recorder::new(false);
    let server = match Server::bind(
        "127.0.0.1:0",
        Arc::clone(&snap),
        ServerConfig::default(),
        rec.clone(),
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench-serve: binding loopback: {e}");
            return ExitCode::FAILURE;
        }
    };
    let running = server.spawn_background();
    let addr = running.addr();

    let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::with_capacity(CLIENTS * REQUESTS_PER_CLIENT));
    let errors: Mutex<usize> = Mutex::new(0);
    let bench_start = clock.now_nanos();
    // detlint::allow(unscoped-thread): benchmark load generation; client
    // concurrency exercises the server's worker pool and never feeds inference
    crossbeam::thread::scope(|s| {
        for c in 0..CLIENTS {
            let snap = &snap;
            let latencies = &latencies;
            let errors = &errors;
            let clock = &clock;
            s.spawn(move |_| {
                let mut local = Vec::with_capacity(REQUESTS_PER_CLIENT);
                let mut failed = 0usize;
                let mut client = match Client::connect(addr) {
                    Ok(cl) => cl,
                    Err(e) => {
                        eprintln!("bench-serve: client {c} connect: {e}");
                        *errors.lock().unwrap() += REQUESTS_PER_CLIENT;
                        return;
                    }
                };
                for i in 0..REQUESTS_PER_CLIENT {
                    let req = request_for(snap, c + i * CLIENTS);
                    let t0 = clock.now_nanos();
                    match client.call(&req) {
                        Ok(resp) if resp.ok => local.push(clock.now_nanos() - t0),
                        _ => failed += 1,
                    }
                }
                latencies.lock().unwrap().extend(local);
                *errors.lock().unwrap() += failed;
            });
        }
    })
    .expect("bench client panicked");
    let wall_ms = (clock.now_nanos() - bench_start) as f64 / 1e6;

    // Ask the server itself how the run looked before shutting it down; the
    // per-verb table doubles as a check that the whole verb mix arrived.
    let server_stats = Client::connect(addr)
        .and_then(|mut c| c.call(&Request::verb("stats")))
        .ok()
        .and_then(|r| r.stats);
    running.shutdown();
    let Some(server_stats) = server_stats else {
        eprintln!("bench-serve: final stats request failed");
        return ExitCode::FAILURE;
    };
    if server_stats
        .verbs
        .as_ref()
        .is_none_or(std::collections::BTreeMap::is_empty)
    {
        eprintln!("bench-serve: stats response carries no per-verb metrics");
        return ExitCode::FAILURE;
    }

    let mut lat = latencies.into_inner().unwrap();
    lat.sort_unstable();
    let errors = errors.into_inner().unwrap();
    let total = CLIENTS * REQUESTS_PER_CLIENT;
    let doc = BenchDoc {
        schema: "bdrmapit.bench-serve/v1",
        scale: "tiny",
        seed: SEED,
        clients: CLIENTS,
        requests_per_client: REQUESTS_PER_CLIENT,
        total_requests: total,
        errors,
        wall_ms,
        throughput_rps: lat.len() as f64 / (wall_ms / 1_000.0),
        p50_us: percentile_us(&lat, 0.50),
        p99_us: percentile_us(&lat, 0.99),
        snapshot_load_ms,
        server_stats,
        server_report: rec.report(),
    };

    if errors > 0 {
        eprintln!("bench-serve: {errors}/{total} requests failed");
        return ExitCode::FAILURE;
    }
    let text = serde_json::to_string_pretty(&doc).expect("bench document serializes");
    if let Err(e) = std::fs::write(&out, text) {
        eprintln!("bench-serve: writing {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {out}: {:.0} req/s, p50 {:.0} us, p99 {:.0} us, load {:.1} ms",
        doc.throughput_rps, doc.p50_us, doc.p99_us, doc.snapshot_load_ms
    );
    ExitCode::SUCCESS
}
