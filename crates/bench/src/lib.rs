//! Shared fixtures for the benchmark suite.
//!
//! Benchmarks regenerate every paper table/figure (`benches/figures.rs`),
//! time the pipeline end-to-end at several scales (`benches/pipeline.rs`),
//! and microbenchmark the hot substrate operations (`benches/substrates.rs`).
//! Fixtures are built once per process and shared, so Criterion timing
//! loops measure only the operation under test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use eval::{CorpusBundle, Scenario};
use topo_gen::GeneratorConfig;

/// A prepared scenario plus a standard corpus, shared across benches.
pub struct Fixture {
    /// The scenario (Internet + RIB + oracle + relationships).
    pub scenario: Scenario,
    /// An 8-VP campaign excluding validation networks.
    pub bundle: CorpusBundle,
}

impl Fixture {
    /// Builds the standard benchmark fixture (tiny scale so the whole suite
    /// completes in minutes; the CLI reproduces the figures at full scale).
    pub fn standard() -> Fixture {
        let scenario = Scenario::build(GeneratorConfig::tiny(2018));
        let bundle = scenario.campaign(8, true, 1);
        Fixture { scenario, bundle }
    }

    /// A fixture at an arbitrary scale.
    pub fn at(cfg: GeneratorConfig, vps: usize) -> Fixture {
        let scenario = Scenario::build(cfg);
        let bundle = scenario.campaign(vps, true, 1);
        Fixture { scenario, bundle }
    }
}
