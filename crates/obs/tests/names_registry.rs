//! Registry audit: every metric, phase, span, or trace-event name used as a
//! string literal anywhere in workspace (non-test) source must be declared
//! in `obs::names`. The registry is what makes `report diff` and the
//! determinism comparisons meaningful — an ad-hoc literal at a call site
//! would create a counter nobody can cross-reference or gate on.
//!
//! The check is lexical (a grep in cargo-test clothing): it scans
//! `crates/*/src/**/*.rs`, truncates each file at its first `#[cfg(test)]`
//! so unit-test fixtures can use throwaway names, and flags any string
//! literal passed directly to a recording method.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Recording methods whose first argument is a registered name.
const RECORDING_CALLS: &[&str] = &[
    ".add(\"",
    ".inc(\"",
    ".add_exec(\"",
    ".record(\"",
    ".span(\"",
    ".begin(\"",
    ".end(\"",
    ".instant(\"",
    ".begin_main(\"",
    ".end_main(\"",
    ".instant_main(\"",
    ".track(\"",
    ".worker(\"",
];

fn workspace_crates() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("obs lives under crates/")
        .to_path_buf()
}

fn rust_sources_under(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("readable source tree") {
        let path = entry.expect("readable entry").path();
        if path.is_dir() {
            rust_sources_under(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// All string literals in `names.rs` outside comments: the declared
/// registry, including slice members like the serve verb list.
fn declared_names() -> BTreeSet<String> {
    let text = include_str!("../src/names.rs");
    let mut declared = BTreeSet::new();
    for line in text.lines() {
        let code = line.split("//").next().unwrap_or("");
        let mut rest = code;
        while let Some(start) = rest.find('"') {
            let Some(len) = rest[start + 1..].find('"') else {
                break;
            };
            declared.insert(rest[start + 1..start + 1 + len].to_string());
            rest = &rest[start + len + 2..];
        }
    }
    assert!(
        declared.len() > 30,
        "names.rs parse looks broken: only {} literals",
        declared.len()
    );
    declared
}

#[test]
fn every_literal_metric_name_is_declared_in_obs_names() {
    let declared = declared_names();
    let mut sources = Vec::new();
    for entry in std::fs::read_dir(workspace_crates()).expect("crates/ readable") {
        let src = entry.expect("crate dir").path().join("src");
        if src.is_dir() {
            rust_sources_under(&src, &mut sources);
        }
    }
    assert!(
        sources.len() > 10,
        "workspace scan looks broken: only {} files",
        sources.len()
    );

    let names_rs = Path::new("names.rs");
    let mut violations = Vec::new();
    for path in &sources {
        if path.file_name() == Some(names_rs.as_os_str()) {
            continue; // the registry itself
        }
        let text = std::fs::read_to_string(path).expect("readable source file");
        let body = text.split("#[cfg(test)]").next().unwrap_or("");
        for (lineno, line) in body.lines().enumerate() {
            let code = line.split("//").next().unwrap_or("");
            for call in RECORDING_CALLS {
                let mut rest = code;
                while let Some(at) = rest.find(call) {
                    let lit = &rest[at + call.len()..];
                    let Some(end) = lit.find('"') else { break };
                    let name = &lit[..end];
                    if !declared.contains(name) {
                        violations.push(format!(
                            "{}:{}: `{}{}\"` not declared in obs::names",
                            path.display(),
                            lineno + 1,
                            call,
                            name
                        ));
                    }
                    rest = &rest[at + call.len() + end..];
                }
            }
        }
    }
    assert!(
        violations.is_empty(),
        "undeclared metric/trace names:\n{}",
        violations.join("\n")
    );
}

#[test]
fn registry_constants_are_unique_and_well_formed() {
    // Spot-check the registry itself: the names the pipeline and the CLI
    // gate on exist, and nothing in the registry is empty or whitespace.
    let declared = declared_names();
    for must_exist in [
        obs::names::PHASE_GRAPH,
        obs::names::PHASE_REFINE,
        obs::names::REFINE_ITERATIONS,
        obs::names::EV_POOL_TASK,
        obs::names::EV_REFINE_WAVE,
        obs::names::EV_SERVE_REQUEST,
        obs::names::TRACK_MAIN,
    ] {
        assert!(declared.contains(must_exist), "{must_exist} not found");
    }
    for name in &declared {
        assert!(!name.trim().is_empty(), "blank name in registry");
        assert_eq!(name.trim(), name, "padded name in registry: `{name}`");
    }
    for verb in obs::names::SERVE_VERBS {
        assert!(
            declared.contains(*verb),
            "serve verb `{verb}` missing from registry literals"
        );
    }
}
