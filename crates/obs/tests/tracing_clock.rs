//! Clock discipline for the tracing layer: every trace timestamp comes from
//! the recorder's one [`obs::Clock`], and per-track timestamps stay
//! monotone even when spans on different tracks overlap arbitrarily.

use obs::trace::validate_chrome_json;
use obs::{names, MockClock, Recorder};

#[test]
fn overlapping_spans_on_shared_clock_stay_monotone_per_track() {
    let clock = MockClock::new();
    let rec = Recorder::with_clock_tracing(false, Box::new(clock.clone()), 256);
    let tracer = rec.tracer();

    // Two worker tracks plus the main track, all reading the same mock
    // clock, with spans interleaved so no single track sees every tick:
    // main opens, worker 0 opens, worker 1 opens+closes inside, worker 0
    // closes after main's nested instant.
    let mut w0 = tracer.worker(names::TRACK_REFINE_WORKER, 0);
    let mut w1 = tracer.worker(names::TRACK_REFINE_WORKER, 1);
    tracer.begin_main(names::PHASE_REFINE, 0);
    clock.advance(1_000);
    w0.begin(names::EV_REFINE_SHARD, 0);
    clock.advance(1_000);
    w1.begin(names::EV_REFINE_SHARD, 1);
    clock.advance(500);
    w1.instant(names::EV_REFINE_WAVE, 1);
    w1.end(names::EV_REFINE_SHARD);
    clock.advance(500);
    tracer.instant_main(names::EV_CAMPAIGN_DESTS, 42);
    clock.advance(1_000);
    w0.end(names::EV_REFINE_SHARD);
    tracer.end_main(names::PHASE_REFINE);
    tracer.submit(w0);
    tracer.submit(w1);

    let doc = tracer.finish();
    assert_eq!(doc.dropped(), 0);

    // The validator enforces per-tid monotone timestamps and strict
    // begin/end pairing; with a shared MockClock that only ever advances,
    // an export that read any other time source would fail here.
    let json = doc.to_chrome_json();
    let check = validate_chrome_json(&json).expect("interleaved trace is valid");
    assert_eq!(check.tracks, 3, "main + two worker tracks");
    assert_eq!(check.dropped, 0);

    // Cross-track ordering is also exact, not just per-track: the mock
    // clock gives every event a known absolute time. Worker 1's span sits
    // strictly inside worker 0's.
    let all: Vec<_> = doc
        .tracks
        .iter()
        .flat_map(|t| t.events.iter().map(move |e| (t.name.clone(), e)))
        .collect();
    let at = |track: &str, kind: obs::trace::EventKind| {
        all.iter()
            .find(|(name, e)| name == track && e.kind == kind)
            .map(|(_, e)| e.t_nanos)
            .unwrap()
    };
    use obs::trace::EventKind::{Begin, End};
    assert_eq!(at("refine.worker0", Begin), 1_000);
    assert_eq!(at("refine.worker1", Begin), 2_000);
    assert_eq!(at("refine.worker1", End), 2_500);
    assert_eq!(at("refine.worker0", End), 4_000);
    assert!(at("refine.worker1", End) < at("refine.worker0", End));
}

#[test]
fn mock_clock_is_shared_not_copied_into_worker_tracers() {
    // Advancing the clock between a worker tracer's creation and its first
    // event must be visible: the tracer holds the clock, not a snapshot.
    let clock = MockClock::new();
    let rec = Recorder::with_clock_tracing(false, Box::new(clock.clone()), 64);
    let tracer = rec.tracer();
    let mut w = tracer.worker(names::TRACK_POOL_WORKER, 0);
    clock.advance(7_000);
    w.instant(names::EV_POOL_TASK, 1);
    tracer.submit(w);
    let doc = tracer.finish();
    let ev = doc
        .tracks
        .iter()
        .flat_map(|t| t.events.iter())
        .next()
        .expect("one event");
    assert_eq!(ev.t_nanos, 7_000);
}
