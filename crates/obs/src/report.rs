//! The machine-readable run report.
//!
//! A [`RunReport`] is the JSON artifact a CLI run leaves behind
//! (`--report <path>`): per-phase wall times, the deterministic counter and
//! histogram sets, and the execution-dependent metrics. Wall times and
//! execution-dependent metrics are *excluded* from
//! [`RunReport::deterministic_view`] — they legitimately vary between runs
//! and thread counts — so determinism tests compare exactly the part of the
//! report the contract covers (see DESIGN.md §10).

use crate::metrics::{Histogram, MetricSheet};
use crate::names;
use crate::recorder::PhaseAgg;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The report schema identifier; bump on any breaking shape change.
pub const SCHEMA: &str = "bdrmapit.run-report/v1";

/// Wall-time statistics for one phase.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PhaseStats {
    /// Times the phase span was entered.
    pub count: u64,
    /// Total wall time across entries, in milliseconds.
    pub wall_ms: f64,
}

/// Summary of one histogram, with the exact sample map preserved.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Exact `value → occurrences` map.
    pub values: BTreeMap<u64, u64>,
}

impl HistogramSummary {
    fn of(h: &Histogram) -> HistogramSummary {
        HistogramSummary {
            count: h.count(),
            sum: h.sum(),
            min: h.min().unwrap_or(0),
            max: h.max().unwrap_or(0),
            values: h.values().clone(),
        }
    }
}

/// The complete run report.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Schema identifier ([`SCHEMA`]).
    pub schema: String,
    /// Per-phase wall-time statistics, keyed by span name.
    pub phases: BTreeMap<String, PhaseStats>,
    /// Deterministic counters: identical for every thread count.
    pub counters: BTreeMap<String, u64>,
    /// Execution-dependent counters (cache hit rates, worker slots).
    pub exec: BTreeMap<String, u64>,
    /// Deterministic histograms.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

/// The thread-count-invariant slice of a report: what determinism tests
/// compare. Phases (wall time) and `exec` metrics are deliberately absent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeterministicMetrics {
    /// Deterministic counters.
    pub counters: BTreeMap<String, u64>,
    /// Deterministic histograms.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl RunReport {
    /// An empty report (what a disabled recorder snapshots to).
    pub fn empty() -> RunReport {
        RunReport {
            schema: SCHEMA.to_string(),
            phases: BTreeMap::new(),
            counters: BTreeMap::new(),
            exec: BTreeMap::new(),
            histograms: BTreeMap::new(),
        }
    }

    pub(crate) fn from_parts(
        sheet: &MetricSheet,
        phases: &BTreeMap<&'static str, PhaseAgg>,
    ) -> RunReport {
        RunReport {
            schema: SCHEMA.to_string(),
            phases: phases
                .iter()
                .map(|(&name, agg)| {
                    (
                        name.to_string(),
                        PhaseStats {
                            count: agg.count,
                            wall_ms: agg.wall_nanos as f64 / 1e6,
                        },
                    )
                })
                .collect(),
            counters: sheet
                .counters
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
            exec: sheet
                .exec
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
            histograms: sheet
                .hists
                .iter()
                .map(|(&k, h)| (k.to_string(), HistogramSummary::of(h)))
                .collect(),
        }
    }

    /// The deterministic slice (counters + histograms; no wall times, no
    /// execution-dependent metrics).
    pub fn deterministic_view(&self) -> DeterministicMetrics {
        DeterministicMetrics {
            counters: self.counters.clone(),
            histograms: self.histograms.clone(),
        }
    }

    /// Checks that the report describes a complete pipeline run: every
    /// mandatory phase present and at least one refinement iteration.
    pub fn validate(&self) -> Result<(), String> {
        let missing: Vec<&str> = names::MANDATORY_PHASES
            .iter()
            .copied()
            .filter(|p| !self.phases.contains_key(*p))
            .collect();
        if !missing.is_empty() {
            return Err(format!(
                "run report is missing mandatory phase(s): {}",
                missing.join(", ")
            ));
        }
        let iterations = self
            .counters
            .get(names::REFINE_ITERATIONS)
            .copied()
            .unwrap_or(0);
        if iterations == 0 {
            return Err("run report shows zero refinement iterations".to_string());
        }
        Ok(())
    }

    /// Pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("run report serializes")
    }

    /// Parses a report back from JSON.
    pub fn from_json(text: &str) -> Result<RunReport, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::MockClock;
    use crate::Recorder;

    fn complete_report() -> RunReport {
        let clock = MockClock::new();
        let rec = Recorder::with_clock(false, Box::new(clock.clone()));
        for phase in names::MANDATORY_PHASES {
            let _s = rec.span(phase);
            clock.advance(1_000_000);
        }
        rec.add(names::REFINE_ITERATIONS, 3);
        rec.record(names::HIST_SHARD_ITERATIONS, 2);
        rec.add_exec(names::EXEC_CACHE_HITS, 99);
        rec.report()
    }

    #[test]
    fn json_roundtrip_is_lossless_and_schema_stable() {
        let report = complete_report();
        assert_eq!(report.schema, SCHEMA);
        let json = report.to_json();
        let back = RunReport::from_json(&json).unwrap();
        assert_eq!(back, report);
        // Shape the CI gate greps for.
        assert!(json.contains("\"phase3.refine\""));
        assert!(json.contains("\"refine.iterations\""));
    }

    #[test]
    fn validate_accepts_complete_runs() {
        assert_eq!(complete_report().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_missing_phases_and_zero_iterations() {
        let rec = Recorder::with_clock(false, Box::new(MockClock::new()));
        rec.add(names::REFINE_ITERATIONS, 3);
        let err = rec.report().validate().unwrap_err();
        assert!(err.contains("missing mandatory phase"), "{err}");
        assert!(err.contains(names::PHASE_TOPO), "{err}");

        let mut report = complete_report();
        report.counters.insert(names::REFINE_ITERATIONS.into(), 0);
        let err = report.validate().unwrap_err();
        assert!(err.contains("zero refinement iterations"), "{err}");
    }

    #[test]
    fn deterministic_view_excludes_wall_times_and_exec() {
        let a = complete_report();
        // A second run with different wall times and cache stats...
        let clock = MockClock::new();
        let rec = Recorder::with_clock(false, Box::new(clock.clone()));
        for phase in names::MANDATORY_PHASES {
            let _s = rec.span(phase);
            clock.advance(42_000_000); // very different timings
        }
        rec.add(names::REFINE_ITERATIONS, 3);
        rec.record(names::HIST_SHARD_ITERATIONS, 2);
        rec.add_exec(names::EXEC_CACHE_HITS, 1); // very different cache stats
        let b = rec.report();
        // ...differs as a whole report but not in the deterministic view.
        assert_ne!(a, b);
        assert_eq!(a.deterministic_view(), b.deterministic_view());
    }
}
