//! Event tracing: fixed-capacity per-worker ring buffers merged into a
//! Chrome trace-event document.
//!
//! The layer follows the same contract as the rest of `obs`:
//!
//! * **write-only** — nothing in the pipeline ever reads a tracer;
//! * **no-op when disabled** — a disabled [`Tracer`] hands out disabled
//!   [`WorkerTracer`]s whose every call is a branch and a return, with no
//!   allocation and no clock read;
//! * **single clock** — every timestamp comes from the [`Clock`] the owning
//!   recorder was built with, so all tracks share one epoch and the only
//!   wall-clock read in the workspace stays inside
//!   [`MonotonicClock`](crate::MonotonicClock);
//! * **bounded memory** — each track is a ring of at most `capacity` events;
//!   when a ring wraps, the oldest events are dropped and the drop count is
//!   carried into the exported document's header.
//!
//! Workers record into a private [`WorkerTracer`] (one per worker, `&mut`
//! access, no interior mutability) and the owning scope submits the buffer
//! back to the shared [`Tracer`] after the batch joins. At export time the
//! tracks are sorted by name (digit-suffix aware, so `worker2` precedes
//! `worker10`), which makes the merged document deterministic in *structure*
//! regardless of submission timing; only the wall-clock timestamps vary from
//! run to run.

use crate::clock::Clock;
use crate::names;
use serde::json::{parse, write_json, Value};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Schema marker embedded in the exported document (top-level `"schema"`
/// key; Chrome/Perfetto ignore unknown top-level keys).
pub const TRACE_SCHEMA: &str = "bdrmapit.trace/v1";

/// Default per-track ring capacity (events). At 32 bytes an event, a full
/// track costs 2 MiB; a tiny pipeline run stays well under one ring.
pub const DEFAULT_TRACK_CAPACITY: usize = 65_536;

/// What a [`TraceEvent`] marks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A span opens (Chrome phase `"B"`).
    Begin,
    /// The innermost open span closes (Chrome phase `"E"`).
    End,
    /// A point event (Chrome phase `"i"`, thread-scoped).
    Instant,
}

/// One typed, timestamped event. `Copy` and allocation-free: names are
/// `&'static str` from [`names`], and the single `arg` slot carries the
/// event's payload (task index, batch size, stolen count, ...).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event name (a constant from [`names`]).
    pub name: &'static str,
    /// Begin / End / Instant.
    pub kind: EventKind,
    /// Timestamp in nanoseconds on the owning tracer's clock.
    pub t_nanos: u64,
    /// Event payload (meaning depends on `name`).
    pub arg: u64,
}

/// A fixed-capacity event ring. Pushing past capacity overwrites the oldest
/// event and counts the drop; the buffer never reallocates after filling.
#[derive(Debug)]
pub struct TraceBuffer {
    events: Vec<TraceEvent>,
    cap: usize,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    dropped: u64,
}

impl TraceBuffer {
    /// An empty ring holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> TraceBuffer {
        let cap = capacity.max(1);
        TraceBuffer {
            events: Vec::with_capacity(cap),
            cap,
            head: 0,
            dropped: 0,
        }
    }

    /// Appends an event, dropping the oldest when full.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.events.len() < self.cap {
            self.events.push(ev);
        } else {
            self.events[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// How many events have been overwritten.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events oldest→newest.
    pub fn iter_in_order(&self) -> impl Iterator<Item = &TraceEvent> {
        let (newer, older) = self.events.split_at(self.head);
        older.iter().chain(newer.iter())
    }

    /// Folds `other`'s events (and drop count) into this ring.
    pub fn absorb(&mut self, other: &TraceBuffer) {
        self.dropped += other.dropped;
        for ev in other.iter_in_order() {
            self.push(*ev);
        }
    }
}

#[derive(Debug)]
struct WorkerTracerInner {
    clock: Arc<dyn Clock>,
    track: String,
    buf: TraceBuffer,
}

/// A single worker's private event recorder: owned (`&mut` push, no locks,
/// no interior mutability), so it is safe inside pool worker closures. The
/// disabled form records nothing and reads no clock.
#[derive(Debug, Default)]
pub struct WorkerTracer {
    inner: Option<WorkerTracerInner>,
}

impl WorkerTracer {
    /// The no-op worker tracer.
    pub fn disabled() -> WorkerTracer {
        WorkerTracer::default()
    }

    /// True when events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span on this worker's track.
    pub fn begin(&mut self, name: &'static str, arg: u64) {
        self.push(EventKind::Begin, name, arg);
    }

    /// Closes the innermost open span (`name` must match its begin).
    pub fn end(&mut self, name: &'static str) {
        self.push(EventKind::End, name, 0);
    }

    /// Records a point event.
    pub fn instant(&mut self, name: &'static str, arg: u64) {
        self.push(EventKind::Instant, name, arg);
    }

    fn push(&mut self, kind: EventKind, name: &'static str, arg: u64) {
        if let Some(inner) = &mut self.inner {
            let t_nanos = inner.clock.now_nanos();
            inner.buf.push(TraceEvent {
                name,
                kind,
                t_nanos,
                arg,
            });
        }
    }
}

#[derive(Debug)]
struct TrackState {
    name: String,
    buf: TraceBuffer,
}

#[derive(Debug)]
struct TracerInner {
    clock: Arc<dyn Clock>,
    capacity: usize,
    tracks: Mutex<Vec<TrackState>>,
}

/// The shared trace sink a [`Recorder`](crate::Recorder) owns. Cloneable
/// handle; the disabled form (from a recorder built without tracing) makes
/// every call a no-op.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl Tracer {
    /// The no-op tracer.
    pub fn disabled() -> Tracer {
        Tracer::default()
    }

    /// An enabled tracer timestamping on `clock`, with per-track rings of
    /// `capacity` events.
    pub fn new(clock: Arc<dyn Clock>, capacity: usize) -> Tracer {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                clock,
                capacity,
                tracks: Mutex::new(Vec::new()),
            })),
        }
    }

    /// True when events are being collected.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A private [`WorkerTracer`] recording onto the named track. The
    /// buffer must be handed back through [`Tracer::submit`] to appear in
    /// the document.
    pub fn track(&self, name: &str) -> WorkerTracer {
        let Some(inner) = &self.inner else {
            return WorkerTracer::disabled();
        };
        WorkerTracer {
            inner: Some(WorkerTracerInner {
                clock: inner.clock.clone(),
                track: name.to_string(),
                buf: TraceBuffer::new(inner.capacity),
            }),
        }
    }

    /// A worker tracer on the track `{prefix}{index}` (e.g. `pool.worker3`).
    /// Disabled tracers allocate nothing.
    pub fn worker(&self, prefix: &str, index: usize) -> WorkerTracer {
        if self.inner.is_none() {
            return WorkerTracer::disabled();
        }
        self.track(&format!("{prefix}{index}"))
    }

    /// Opens a span on the shared `main` track (recorder phase spans).
    pub fn begin_main(&self, name: &'static str, arg: u64) {
        self.push_main(EventKind::Begin, name, arg);
    }

    /// Closes the innermost open span on the `main` track.
    pub fn end_main(&self, name: &'static str) {
        self.push_main(EventKind::End, name, 0);
    }

    /// Records a point event on the `main` track.
    pub fn instant_main(&self, name: &'static str, arg: u64) {
        self.push_main(EventKind::Instant, name, arg);
    }

    fn push_main(&self, kind: EventKind, name: &'static str, arg: u64) {
        let Some(inner) = &self.inner else { return };
        let mut tracks = inner.tracks.lock().expect("trace track lock");
        // The clock is read under the lock so buffer order and timestamp
        // order agree on the shared track even with concurrent callers.
        let t_nanos = inner.clock.now_nanos();
        let track = find_or_create(&mut tracks, names::TRACK_MAIN, inner.capacity);
        track.buf.push(TraceEvent {
            name,
            kind,
            t_nanos,
            arg,
        });
    }

    /// Merges a worker's finished buffer into the shared store. Submitting
    /// the per-worker buffers in worker-index order after a batch joins
    /// keeps the merged document deterministic in structure.
    pub fn submit(&self, wt: WorkerTracer) {
        let (Some(inner), Some(winner)) = (&self.inner, wt.inner) else {
            return;
        };
        if winner.buf.is_empty() && winner.buf.dropped() == 0 {
            return;
        }
        let mut tracks = inner.tracks.lock().expect("trace track lock");
        let track = find_or_create(&mut tracks, &winner.track, inner.capacity);
        track.buf.absorb(&winner.buf);
    }

    /// Snapshots every track into a [`TraceDoc`], sorted by track name
    /// (digit-suffix aware).
    pub fn finish(&self) -> TraceDoc {
        let Some(inner) = &self.inner else {
            return TraceDoc { tracks: Vec::new() };
        };
        let tracks = inner.tracks.lock().expect("trace track lock");
        let mut dumps: Vec<TrackDump> = tracks
            .iter()
            .map(|t| TrackDump {
                name: t.name.clone(),
                dropped: t.buf.dropped(),
                events: t.buf.iter_in_order().copied().collect(),
            })
            .collect();
        dumps.sort_by_key(|d| track_sort_key(&d.name));
        TraceDoc { tracks: dumps }
    }
}

fn find_or_create<'a>(
    tracks: &'a mut Vec<TrackState>,
    name: &str,
    capacity: usize,
) -> &'a mut TrackState {
    if let Some(i) = tracks.iter().position(|t| t.name == name) {
        return &mut tracks[i];
    }
    tracks.push(TrackState {
        name: name.to_string(),
        buf: TraceBuffer::new(capacity),
    });
    tracks.last_mut().expect("just pushed")
}

/// Sort key splitting a trailing decimal suffix out of a track name, so
/// `pool.worker2` orders before `pool.worker10`.
fn track_sort_key(name: &str) -> (String, u64) {
    let digits = name.chars().rev().take_while(char::is_ascii_digit).count();
    let (stem, suffix) = name.split_at(name.len() - digits);
    (stem.to_string(), suffix.parse().unwrap_or(0))
}

/// One exported track: name, drop count, events oldest→newest.
#[derive(Clone, Debug)]
pub struct TrackDump {
    /// Track name (becomes the Chrome thread name).
    pub name: String,
    /// Events lost to ring wraparound on this track.
    pub dropped: u64,
    /// Retained events in recording order.
    pub events: Vec<TraceEvent>,
}

/// The merged trace document, ready for Chrome trace-event export.
#[derive(Clone, Debug)]
pub struct TraceDoc {
    /// Tracks sorted by name (digit-suffix aware).
    pub tracks: Vec<TrackDump>,
}

impl TraceDoc {
    /// Total events across all tracks.
    pub fn events(&self) -> usize {
        self.tracks.iter().map(|t| t.events.len()).sum()
    }

    /// Total dropped events across all tracks.
    pub fn dropped(&self) -> u64 {
        self.tracks.iter().map(|t| t.dropped).sum()
    }

    /// Renders the document as Chrome trace-event JSON (the object form:
    /// `{"schema": ..., "traceEvents": [...]}`), loadable in Perfetto and
    /// chrome://tracing. Timestamps are microseconds; each track becomes a
    /// `tid` with a `thread_name` metadata record.
    ///
    /// Ring wraparound can orphan `End` events whose `Begin` was
    /// overwritten; those are elided (and counted as dropped) so the export
    /// always satisfies [`validate_chrome_json`]. A span still open at
    /// export time is closed at the track's last timestamp.
    pub fn to_chrome_json(&self) -> String {
        let mut events: Vec<Value> = Vec::new();
        let mut dropped = self.dropped();
        for (i, track) in self.tracks.iter().enumerate() {
            let tid = (i + 1) as u64;
            events.push(Value::Object(vec![
                ("name".into(), Value::String("thread_name".into())),
                ("ph".into(), Value::String("M".into())),
                ("pid".into(), Value::U64(1)),
                ("tid".into(), Value::U64(tid)),
                (
                    "args".into(),
                    Value::Object(vec![("name".into(), Value::String(track.name.clone()))]),
                ),
            ]));
            let mut open: Vec<&'static str> = Vec::new();
            let mut last_nanos = 0u64;
            for ev in &track.events {
                last_nanos = ev.t_nanos;
                match ev.kind {
                    EventKind::Begin => open.push(ev.name),
                    EventKind::End => {
                        if open.pop().is_none() {
                            // Orphaned by ring wraparound: elide.
                            dropped += 1;
                            continue;
                        }
                    }
                    EventKind::Instant => {}
                }
                events.push(chrome_event(ev, tid));
            }
            while let Some(name) = open.pop() {
                events.push(chrome_event(
                    &TraceEvent {
                        name,
                        kind: EventKind::End,
                        t_nanos: last_nanos,
                        arg: 0,
                    },
                    tid,
                ));
            }
        }
        let doc = Value::Object(vec![
            ("schema".into(), Value::String(TRACE_SCHEMA.into())),
            ("displayTimeUnit".into(), Value::String("ms".into())),
            (
                "otherData".into(),
                Value::Object(vec![
                    ("dropped_events".into(), Value::U64(dropped)),
                    ("tracks".into(), Value::U64(self.tracks.len() as u64)),
                ]),
            ),
            ("traceEvents".into(), Value::Array(events)),
        ]);
        let mut out = String::new();
        write_json(&doc, &mut out, Some(2), 0);
        out.push('\n');
        out
    }
}

fn chrome_event(ev: &TraceEvent, tid: u64) -> Value {
    let ts = Value::F64(ev.t_nanos as f64 / 1_000.0);
    let mut fields = vec![
        ("name".into(), Value::String(ev.name.into())),
        (
            "ph".into(),
            Value::String(
                match ev.kind {
                    EventKind::Begin => "B",
                    EventKind::End => "E",
                    EventKind::Instant => "i",
                }
                .into(),
            ),
        ),
        ("ts".into(), ts),
        ("pid".into(), Value::U64(1)),
        ("tid".into(), Value::U64(tid)),
    ];
    if matches!(ev.kind, EventKind::Instant) {
        fields.push(("s".into(), Value::String("t".into())));
    }
    if !matches!(ev.kind, EventKind::End) {
        fields.push((
            "args".into(),
            Value::Object(vec![("arg".into(), Value::U64(ev.arg))]),
        ));
    }
    Value::Object(fields)
}

/// Summary returned by a successful [`validate_chrome_json`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceCheck {
    /// Non-metadata events in the document.
    pub events: usize,
    /// Distinct `tid`s seen.
    pub tracks: usize,
    /// Dropped-event count from the document header.
    pub dropped: u64,
}

/// Validates a `bdrmapit.trace/v1` document: well-formed JSON with the
/// schema marker, a `traceEvents` array of known phases, per-track
/// monotone non-decreasing timestamps, and strictly paired begin/end
/// events (matching names, nothing left open).
pub fn validate_chrome_json(text: &str) -> Result<TraceCheck, String> {
    let doc = parse(text)?;
    let fields = doc.into_object()?;
    let mut schema_ok = false;
    let mut dropped = 0u64;
    let mut trace_events = None;
    for (key, value) in fields {
        match key.as_str() {
            "schema" => {
                let s = value.into_string()?;
                if s != TRACE_SCHEMA {
                    return Err(format!("schema is `{s}`, expected `{TRACE_SCHEMA}`"));
                }
                schema_ok = true;
            }
            "otherData" => {
                for (k, v) in value.into_object()? {
                    if k == "dropped_events" {
                        dropped = value_as_u64(&v)
                            .ok_or_else(|| "dropped_events is not an integer".to_string())?;
                    }
                }
            }
            "traceEvents" => trace_events = Some(value.into_array()?),
            _ => {}
        }
    }
    if !schema_ok {
        return Err(format!("missing `schema` key (expected `{TRACE_SCHEMA}`)"));
    }
    let trace_events = trace_events.ok_or_else(|| "missing `traceEvents` array".to_string())?;

    let mut last_ts: BTreeMap<u64, f64> = BTreeMap::new();
    let mut open: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    let mut tracks: BTreeMap<u64, ()> = BTreeMap::new();
    let mut counted = 0usize;
    for (i, ev) in trace_events.into_iter().enumerate() {
        let fields = ev
            .into_object()
            .map_err(|e| format!("traceEvents[{i}]: {e}"))?;
        let mut name = None;
        let mut ph = None;
        let mut ts = None;
        let mut tid = None;
        let mut scope = None;
        for (k, v) in fields {
            match k.as_str() {
                "name" => name = Some(v.into_string().map_err(|e| format!("event {i}: {e}"))?),
                "ph" => ph = Some(v.into_string().map_err(|e| format!("event {i}: {e}"))?),
                "ts" => ts = value_as_f64(&v),
                "tid" => tid = value_as_u64(&v),
                "s" => scope = v.into_string().ok(),
                _ => {}
            }
        }
        let name = name.ok_or_else(|| format!("event {i}: missing name"))?;
        let ph = ph.ok_or_else(|| format!("event {i}: missing ph"))?;
        if ph == "M" {
            continue;
        }
        let tid = tid.ok_or_else(|| format!("event {i} `{name}`: missing tid"))?;
        let ts = ts.ok_or_else(|| format!("event {i} `{name}`: missing ts"))?;
        tracks.insert(tid, ());
        counted += 1;
        if let Some(&prev) = last_ts.get(&tid) {
            if ts < prev {
                return Err(format!(
                    "event {i} `{name}`: timestamp {ts} goes backwards on tid {tid} (prev {prev})"
                ));
            }
        }
        last_ts.insert(tid, ts);
        match ph.as_str() {
            "B" => open.entry(tid).or_default().push(name),
            "E" => match open.entry(tid).or_default().pop() {
                Some(b) if b == name => {}
                Some(b) => {
                    return Err(format!(
                        "event {i}: end `{name}` does not match open begin `{b}` on tid {tid}"
                    ))
                }
                None => {
                    return Err(format!(
                        "event {i}: end `{name}` with no open begin on tid {tid}"
                    ))
                }
            },
            "i" => {
                if scope.is_none() {
                    return Err(format!("event {i}: instant `{name}` missing scope `s`"));
                }
            }
            other => return Err(format!("event {i} `{name}`: unknown phase `{other}`")),
        }
    }
    for (tid, stack) in &open {
        if let Some(name) = stack.last() {
            return Err(format!("tid {tid}: begin `{name}` never ended"));
        }
    }
    Ok(TraceCheck {
        events: counted,
        tracks: tracks.len(),
        dropped,
    })
}

fn value_as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::U64(n) => Some(*n),
        Value::I64(n) => u64::try_from(*n).ok(),
        _ => None,
    }
}

fn value_as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::U64(n) => Some(*n as f64),
        Value::I64(n) => Some(*n as f64),
        Value::F64(x) => Some(*x),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::MockClock;

    fn mock_tracer(capacity: usize) -> (MockClock, Tracer) {
        let clock = MockClock::new();
        let tracer = Tracer::new(Arc::new(clock.clone()), capacity);
        (clock, tracer)
    }

    #[test]
    fn disabled_tracer_is_free() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        let mut wt = tracer.worker("pool.worker", 0);
        assert!(!wt.is_enabled());
        wt.begin("x", 0);
        wt.end("x");
        tracer.instant_main("y", 1);
        tracer.submit(wt);
        let doc = tracer.finish();
        assert!(doc.tracks.is_empty());
        assert_eq!(doc.events(), 0);
    }

    #[test]
    fn events_round_trip_through_export_and_validation() {
        let (clock, tracer) = mock_tracer(64);
        let mut w0 = tracer.worker("w", 0);
        let mut w1 = tracer.worker("w", 1);
        w0.begin("task", 3);
        clock.advance(1_000);
        w0.end("task");
        w1.instant("steal", 2);
        tracer.begin_main("phase", 0);
        clock.advance(500);
        tracer.end_main("phase");
        // Submission order deliberately reversed: export sorts by name.
        tracer.submit(w1);
        tracer.submit(w0);
        let doc = tracer.finish();
        let names: Vec<&str> = doc.tracks.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, vec!["main", "w0", "w1"]);
        let json = doc.to_chrome_json();
        let check = validate_chrome_json(&json).expect("valid chrome trace");
        assert_eq!(check.events, 5);
        assert_eq!(check.tracks, 3);
        assert_eq!(check.dropped, 0);
        assert!(json.contains("\"bdrmapit.trace/v1\""));
        assert!(json.contains("thread_name"));
    }

    #[test]
    fn worker_track_order_is_numeric_not_lexicographic() {
        let (_clock, tracer) = mock_tracer(8);
        for idx in [10usize, 2, 0] {
            let mut wt = tracer.worker("pool.worker", idx);
            wt.instant("tick", idx as u64);
            tracer.submit(wt);
        }
        let doc = tracer.finish();
        let names: Vec<&str> = doc.tracks.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, vec!["pool.worker0", "pool.worker2", "pool.worker10"]);
    }

    #[test]
    fn ring_wraparound_drops_oldest_and_counts() {
        let mut buf = TraceBuffer::new(3);
        for i in 0..5u64 {
            buf.push(TraceEvent {
                name: "tick",
                kind: EventKind::Instant,
                t_nanos: i,
                arg: i,
            });
        }
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.dropped(), 2);
        let order: Vec<u64> = buf.iter_in_order().map(|e| e.arg).collect();
        assert_eq!(order, vec![2, 3, 4]);
    }

    #[test]
    fn wrapped_track_reports_drops_in_header_and_stays_valid() {
        let (clock, tracer) = mock_tracer(4);
        let mut wt = tracer.worker("w", 0);
        for i in 0..6u64 {
            wt.begin("task", i);
            clock.advance(10);
            wt.end("task");
        }
        tracer.submit(wt);
        let doc = tracer.finish();
        assert_eq!(doc.dropped(), 8);
        let json = doc.to_chrome_json();
        let check = validate_chrome_json(&json).expect("sanitized export validates");
        assert!(check.dropped >= 8);
    }

    #[test]
    fn unclosed_span_is_closed_at_export() {
        let (clock, tracer) = mock_tracer(16);
        let mut wt = tracer.worker("w", 0);
        wt.begin("outer", 0);
        clock.advance(5);
        wt.instant("mark", 1);
        tracer.submit(wt);
        let json = tracer.finish().to_chrome_json();
        validate_chrome_json(&json).expect("export closes open spans");
    }

    #[test]
    fn validation_rejects_malformed_documents() {
        assert!(validate_chrome_json("not json").is_err());
        assert!(validate_chrome_json("{\"traceEvents\": []}")
            .unwrap_err()
            .contains("schema"));
        let bad_schema = "{\"schema\": \"nope\", \"traceEvents\": []}";
        assert!(validate_chrome_json(bad_schema).is_err());
        // Backwards timestamp on one tid.
        let back = format!(
            "{{\"schema\": \"{TRACE_SCHEMA}\", \"traceEvents\": [\
             {{\"name\": \"a\", \"ph\": \"B\", \"ts\": 5, \"pid\": 1, \"tid\": 1}},\
             {{\"name\": \"a\", \"ph\": \"E\", \"ts\": 4, \"pid\": 1, \"tid\": 1}}]}}"
        );
        assert!(validate_chrome_json(&back)
            .unwrap_err()
            .contains("backwards"));
        // Mismatched begin/end names.
        let cross = format!(
            "{{\"schema\": \"{TRACE_SCHEMA}\", \"traceEvents\": [\
             {{\"name\": \"a\", \"ph\": \"B\", \"ts\": 1, \"pid\": 1, \"tid\": 1}},\
             {{\"name\": \"b\", \"ph\": \"E\", \"ts\": 2, \"pid\": 1, \"tid\": 1}}]}}"
        );
        assert!(validate_chrome_json(&cross).unwrap_err().contains("match"));
        // Unclosed begin.
        let open = format!(
            "{{\"schema\": \"{TRACE_SCHEMA}\", \"traceEvents\": [\
             {{\"name\": \"a\", \"ph\": \"B\", \"ts\": 1, \"pid\": 1, \"tid\": 1}}]}}"
        );
        assert!(validate_chrome_json(&open)
            .unwrap_err()
            .contains("never ended"));
    }

    #[test]
    fn absorb_carries_drop_counts_through() {
        let mut a = TraceBuffer::new(2);
        let mut b = TraceBuffer::new(2);
        for i in 0..3u64 {
            b.push(TraceEvent {
                name: "x",
                kind: EventKind::Instant,
                t_nanos: i,
                arg: i,
            });
        }
        assert_eq!(b.dropped(), 1);
        a.absorb(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.dropped(), 1);
    }
}
