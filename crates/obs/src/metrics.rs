//! Typed counters and histograms.
//!
//! A [`MetricSheet`] is a plain, lock-free accumulator. Serial code records
//! straight into the recorder's sheet; each parallel refinement worker owns
//! a private sheet, and the engine merges them in worker-index order once
//! the scoped pool has joined — a deterministic merge of deterministic
//! per-decision counts, which is why total counter values are identical for
//! every thread count.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An exact-value histogram: `value → occurrence count`.
///
/// Pipeline histogram samples (iterations per shard, wavefronts per shard)
/// are small integers with tiny cardinality, so exact counts are cheaper
/// than bucketing and keep the report bit-reproducible.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    values: BTreeMap<u64, u64>,
}

impl Histogram {
    /// Records one sample. Per-value counts saturate at `u64::MAX` rather
    /// than wrapping.
    pub fn record(&mut self, value: u64) {
        let slot = self.values.entry(value).or_insert(0);
        *slot = slot.saturating_add(1);
    }

    /// Folds another histogram into this one. Counts saturate at
    /// `u64::MAX`.
    pub fn merge(&mut self, other: &Histogram) {
        for (&v, &n) in &other.values {
            let slot = self.values.entry(v).or_insert(0);
            *slot = slot.saturating_add(n);
        }
    }

    /// The value at quantile `p` (0.0 ≤ p ≤ 1.0) by nearest-rank over the
    /// exact counts, or `None` when empty. `percentile(0.5)` is the median,
    /// `percentile(0.99)` the p99.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((total - 1) as f64 * p.clamp(0.0, 1.0)).round() as u64;
        let mut seen = 0u64;
        for (&v, &n) in &self.values {
            seen = seen.saturating_add(n);
            if seen > rank {
                return Some(v);
            }
        }
        self.max()
    }

    /// Total samples.
    pub fn count(&self) -> u64 {
        self.values.values().sum()
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.values.iter().map(|(&v, &n)| v * n).sum()
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<u64> {
        self.values.keys().next().copied()
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<u64> {
        self.values.keys().next_back().copied()
    }

    /// The raw `value → count` map.
    pub fn values(&self) -> &BTreeMap<u64, u64> {
        &self.values
    }
}

/// A worker-local (or recorder-owned) metric accumulator.
///
/// Counters come in two classes: *deterministic* ([`MetricSheet::add`]) —
/// per-decision counts that must match across thread counts — and
/// *execution-dependent* ([`MetricSheet::add_exec`]) — cache hit rates and
/// similar scheduling artifacts, reported for tuning but excluded from
/// determinism comparisons.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricSheet {
    pub(crate) counters: BTreeMap<&'static str, u64>,
    pub(crate) exec: BTreeMap<&'static str, u64>,
    pub(crate) hists: BTreeMap<&'static str, Histogram>,
}

impl MetricSheet {
    /// An empty sheet.
    pub fn new() -> MetricSheet {
        MetricSheet::default()
    }

    /// Adds `n` to a deterministic counter.
    pub fn add(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Adds one to a deterministic counter.
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Adds `n` to an execution-dependent counter.
    pub fn add_exec(&mut self, name: &'static str, n: u64) {
        *self.exec.entry(name).or_insert(0) += n;
    }

    /// Records one histogram sample.
    pub fn record(&mut self, name: &'static str, value: u64) {
        self.hists.entry(name).or_default().record(value);
    }

    /// Folds `other` into this sheet (counters add, histograms merge).
    pub fn merge(&mut self, other: &MetricSheet) {
        for (&k, &v) in &other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (&k, &v) in &other.exec {
            *self.exec.entry(k).or_insert(0) += v;
        }
        for (&k, h) in &other.hists {
            self.hists.entry(k).or_default().merge(h);
        }
    }

    /// The value of a deterministic counter (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.exec.is_empty() && self.hists.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_summary_statistics() {
        let mut h = Histogram::default();
        for v in [3u64, 1, 3, 7] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 14);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(7));
        assert_eq!(h.values().get(&3), Some(&2));
        let empty = Histogram::default();
        assert_eq!(empty.min(), None);
        assert_eq!(empty.count(), 0);
    }

    #[test]
    fn histogram_merge_overlapping_values_adds_counts() {
        let mut a = Histogram::default();
        for v in [1u64, 2, 2, 3] {
            a.record(v);
        }
        let mut b = Histogram::default();
        for v in [2u64, 3, 3, 4] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 8);
        assert_eq!(a.values().get(&2), Some(&3));
        assert_eq!(a.values().get(&3), Some(&3));
        assert_eq!((a.min(), a.max()), (Some(1), Some(4)));
        assert_eq!(a.sum(), 1 + 2 * 3 + 3 * 3 + 4);
    }

    #[test]
    fn histogram_merge_disjoint_values_is_a_union() {
        let mut low = Histogram::default();
        low.record(1);
        low.record(2);
        let mut high = Histogram::default();
        high.record(10);
        high.record(20);
        low.merge(&high);
        assert_eq!(low.count(), 4);
        assert_eq!(low.values().len(), 4);
        assert!(low.values().values().all(|&n| n == 1));
        // Merging an empty histogram is the identity.
        let before = low.clone();
        low.merge(&Histogram::default());
        assert_eq!(low, before);
    }

    #[test]
    fn histogram_merge_saturates_instead_of_wrapping() {
        let mut a = Histogram::default();
        a.record(7);
        let mut near_max = Histogram::default();
        near_max.values.insert(7, u64::MAX - 1);
        a.merge(&near_max);
        assert_eq!(a.values().get(&7), Some(&u64::MAX));
        a.merge(&near_max);
        assert_eq!(a.values().get(&7), Some(&u64::MAX), "count stays pinned");
        a.record(7);
        assert_eq!(a.values().get(&7), Some(&u64::MAX), "record saturates too");
    }

    #[test]
    fn sheet_merge_is_order_insensitive_for_totals() {
        let mut a = MetricSheet::new();
        a.add("x", 2);
        a.record("h", 5);
        a.add_exec("e", 1);
        let mut b = MetricSheet::new();
        b.inc("x");
        b.add("y", 4);
        b.record("h", 5);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counter("x"), 3);
        assert_eq!(ab.counter("y"), 4);
        assert_eq!(ab.hists["h"].count(), 2);
        assert_eq!(ab.exec["e"], 1);
    }

    #[test]
    fn empty_sheet_reports_empty() {
        assert!(MetricSheet::new().is_empty());
        let mut s = MetricSheet::new();
        s.inc("x");
        assert!(!s.is_empty());
        assert_eq!(s.counter("missing"), 0);
    }
}
