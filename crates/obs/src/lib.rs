//! **obs**: the pipeline's observability layer.
//!
//! Every phase of the pipeline (topology generation → traceroute simulation
//! → alias resolution → graph construction → refinement) reports what it did
//! through this crate: phase-scoped wall-time [`Span`]s, typed counters and
//! histograms ([`MetricSheet`]), and a machine-readable [`RunReport`]
//! serialized to JSON at the end of a CLI run.
//!
//! The design contract — enforced by the determinism suite and by detlint —
//! is that telemetry is **strictly write-only with respect to inference**:
//!
//! * no annotation decision ever reads a metric, a span, or the clock;
//! * a disabled [`Recorder`] (the default) makes every call a no-op, so
//!   results are bit-identical with observability on, off, or partially on;
//! * parallel refinement workers record into worker-local [`MetricSheet`]s
//!   that are merged in deterministic worker order, so the *counter* values
//!   (not just the convergence hashes) are identical for every thread count;
//! * the only wall-clock read in the workspace lives in
//!   [`clock::MonotonicClock`], behind the mockable [`Clock`] trait, under a
//!   single justified `detlint::allow` — wall times feed only the report,
//!   and are excluded from report equality (see
//!   [`RunReport::deterministic_view`]).
//!
//! The same contract covers the event-tracing layer ([`trace`]): per-worker
//! ring buffers of typed timestamped events, merged in deterministic worker
//! order and exported as a Chrome trace-event document (`--trace-out`).
//!
//! See DESIGN.md §10 for the span taxonomy and counter naming scheme, and
//! §15 for the event taxonomy and trace schema.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod metrics;
pub mod names;
mod recorder;
pub mod report;
pub mod trace;

pub use clock::{Clock, MockClock, MonotonicClock};
pub use metrics::{Histogram, MetricSheet};
pub use recorder::{Recorder, Span};
pub use report::{DeterministicMetrics, HistogramSummary, PhaseStats, RunReport};
pub use trace::{TraceBuffer, TraceEvent, Tracer, WorkerTracer};
