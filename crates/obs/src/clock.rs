//! The workspace's single clock abstraction.
//!
//! Determinism policy (DESIGN.md §9) bans clock reads everywhere inference
//! runs: a value derived from the clock differs between runs, so it must
//! never reach an annotation decision. Observability still needs wall times,
//! so this module concentrates the *entire* workspace's clock access into
//! one trait with one sanctioned `Instant::now` call site — the detlint
//! allow-inventory audit (`crates/detlint/tests/workspace_clean.rs`) pins
//! that site and fails if another one appears.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic nanosecond source. Implementations must be cheap and
/// thread-safe; the recorder reads it on every span enter/exit.
pub trait Clock: Send + Sync + fmt::Debug {
    /// Nanoseconds since an arbitrary (per-clock) epoch.
    fn now_nanos(&self) -> u64;
}

/// The real clock: monotonic time since recorder construction.
pub struct MonotonicClock {
    epoch: Instant,
}

impl MonotonicClock {
    /// Creates a clock whose epoch is "now".
    pub fn new() -> MonotonicClock {
        MonotonicClock {
            // detlint::allow(nondet-source): the single sanctioned wall-clock
            // read in the workspace; span durations feed only the write-only
            // RunReport and are excluded from report equality
            epoch: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_nanos(&self) -> u64 {
        // `elapsed` is a subtraction against the stored epoch, not a second
        // clock-read site in detlint's model; the read above is the only one.
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

impl fmt::Debug for MonotonicClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MonotonicClock").finish_non_exhaustive()
    }
}

/// A manually-advanced clock for tests: deterministic span durations without
/// touching the real clock.
#[derive(Clone, Debug, Default)]
pub struct MockClock {
    nanos: Arc<AtomicU64>,
}

impl MockClock {
    /// A mock clock starting at zero.
    pub fn new() -> MockClock {
        MockClock::default()
    }

    /// Advances the clock by `nanos` nanoseconds.
    pub fn advance(&self, nanos: u64) {
        self.nanos.fetch_add(nanos, Ordering::SeqCst);
    }
}

impl Clock for MockClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_never_goes_backwards() {
        let c = MonotonicClock::new();
        let a = c.now_nanos();
        let b = c.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn mock_clock_advances_exactly() {
        let c = MockClock::new();
        assert_eq!(c.now_nanos(), 0);
        c.advance(1_500);
        assert_eq!(c.now_nanos(), 1_500);
        let shared = c.clone();
        shared.advance(500);
        assert_eq!(c.now_nanos(), 2_000, "clones share the same time source");
    }
}
