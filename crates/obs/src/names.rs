//! The span taxonomy and counter naming scheme (DESIGN.md §10).
//!
//! Names are `<subsystem>.<noun>` for counters and histograms, and phase
//! spans follow the pipeline: the three synthetic input stages carry their
//! subsystem name, the three bdrmapIT algorithm stages carry the paper's
//! phase numbers. Keeping every name a `&'static str` constant here — rather
//! than ad-hoc strings at call sites — is what makes the report
//! schema-stable: a renamed counter is a compile-time event, not a silently
//! forked time series.

// ---- phase spans -----------------------------------------------------------

/// Synthetic Internet generation (topo-gen).
pub const PHASE_TOPO: &str = "topo.generate";
/// Traceroute campaign simulation (traceroute).
pub const PHASE_TRACEROUTE: &str = "traceroute.campaign";
/// Alias resolution (alias).
pub const PHASE_ALIAS: &str = "alias.resolve";
/// bdrmapIT phase 1: IR graph construction (§4).
pub const PHASE_GRAPH: &str = "phase1.graph";
/// bdrmapIT phase 2: last-hop annotation (§5).
pub const PHASE_LASTHOP: &str = "phase2.lasthop";
/// bdrmapIT phase 3: iterative graph refinement (§6).
pub const PHASE_REFINE: &str = "phase3.refine";
/// Reading a dataset bundle from disk (`bdrmapit infer`).
pub const PHASE_READ_BUNDLE: &str = "io.read_bundle";

/// The five pipeline phases every complete synthetic run must traverse.
/// [`crate::RunReport::validate`] fails when any is missing.
pub const MANDATORY_PHASES: &[&str] = &[
    PHASE_TOPO,
    PHASE_TRACEROUTE,
    PHASE_ALIAS,
    PHASE_GRAPH,
    PHASE_REFINE,
];

// ---- deterministic counters ------------------------------------------------
// Identical for every `Config::threads` value; compared across thread counts
// by the determinism suite.

/// ASes in the generated topology.
pub const TOPO_ASES: &str = "topo.ases";
/// Routers in the generated topology.
pub const TOPO_ROUTERS: &str = "topo.routers";
/// Interfaces in the generated topology.
pub const TOPO_IFACES: &str = "topo.ifaces";
/// Traces collected by the campaign.
pub const TRACEROUTE_TRACES: &str = "traceroute.traces";
/// Total hop slots across all traces (responsive or not).
pub const TRACEROUTE_HOPS: &str = "traceroute.hops";
/// Responsive hops across all traces.
pub const TRACEROUTE_RESPONSIVE_HOPS: &str = "traceroute.responsive_hops";
/// Alias groups resolved.
pub const ALIAS_GROUPS: &str = "alias.groups";
/// Addresses placed in a (multi-address) alias group.
pub const ALIAS_ALIASED_ADDRS: &str = "alias.aliased_addrs";
/// Inferred routers in the IR graph.
pub const GRAPH_IRS: &str = "graph.irs";
/// IR→interface links in the IR graph.
pub const GRAPH_LINKS: &str = "graph.links";
/// Observed interfaces in the IR graph.
pub const GRAPH_IFACES: &str = "graph.ifaces";
/// IRs frozen by the last-hop phase.
pub const LASTHOP_FROZEN: &str = "lasthop.frozen";
/// Refinement runs executed (a report can cover several).
pub const REFINE_RUNS: &str = "refine.runs";
/// Refinement iterations (max across shards, summed over runs).
pub const REFINE_ITERATIONS: &str = "refine.iterations";
/// Shards in the refinement plans processed.
pub const REFINE_SHARDS: &str = "refine.shards";
/// Router annotations that changed value during a sweep.
pub const REFINE_VOTES_CHANGED: &str = "refine.votes_changed";
/// Routers carrying an annotation after refinement.
pub const REFINE_ROUTERS_ANNOTATED: &str = "refine.routers_annotated";
/// Hidden-AS detections that replaced an election result (§6.1.5).
pub const REFINE_HIDDEN_FIRINGS: &str = "refine.hidden_firings";
/// Election exceptions that fired (§6.1.3).
pub const REFINE_EXCEPTION_FIRINGS: &str = "refine.exception_firings";
/// Reallocated-prefix corrections applied (§6.1.2).
pub const REFINE_REALLOC_FIRINGS: &str = "refine.realloc_firings";
/// Link votes redirected by third-party detection (§6.1.1 lines 6–8).
pub const REFINE_THIRD_PARTY_VOTES: &str = "refine.third_party_votes";

// ---- deterministic histograms ----------------------------------------------

/// Iterations to convergence, one sample per shard.
pub const HIST_SHARD_ITERATIONS: &str = "refine.shard_iterations";
/// Wavefront levels, one sample per shard.
pub const HIST_SHARD_WAVEFRONTS: &str = "refine.shard_wavefronts";

// ---- detlint static-analysis counters ----------------------------------------
// Deterministic: pure functions of the scanned source tree.

/// Source files the detlint workspace scan lexed and indexed.
pub const DETLINT_FILES: &str = "detlint.files";
/// Function definitions in the detlint symbol index.
pub const DETLINT_FNS: &str = "detlint.fns";
/// Name-matched call edges in the detlint call graph.
pub const DETLINT_CALL_EDGES: &str = "detlint.call_edges";
/// Functions seeding order taint (return hash-collection iteration order).
pub const DETLINT_TAINT_SOURCES: &str = "detlint.taint_sources";
/// Functions carrying order taint after the cross-file fixpoint.
pub const DETLINT_TAINTED_FNS: &str = "detlint.tainted_fns";

// ---- execution-dependent metrics -------------------------------------------
// Vary with thread count and scheduling (per-worker caches); reported for
// tuning but excluded from the deterministic view.

/// RelQueryCache memo hits across all refinement workers.
pub const EXEC_CACHE_HITS: &str = "asrel.cache_hits";
/// RelQueryCache memo misses across all refinement workers.
pub const EXEC_CACHE_MISSES: &str = "asrel.cache_misses";
/// Worker slots the refinement engine actually used.
pub const EXEC_REFINE_WORKERS: &str = "refine.workers";
/// Worker slots the probe-campaign sharder actually used.
pub const EXEC_CAMPAIGN_WORKERS: &str = "campaign.workers";
/// Worker slots the phase-1 graph build actually used.
pub const EXEC_GRAPH_WORKERS: &str = "graph.workers";
/// Tasks dispatched by the shared worker pool (all phases).
pub const EXEC_POOL_TASKS: &str = "pool.tasks";
/// Tasks a pool worker took from a sibling's dealt interval.
pub const EXEC_POOL_STEALS: &str = "pool.steals";
/// Aggregate pool worker busy time in the probe campaign, microseconds.
pub const EXEC_POOL_BUSY_CAMPAIGN: &str = "pool.busy_us.campaign";
/// Aggregate pool worker busy time in the phase-1 graph build, microseconds.
pub const EXEC_POOL_BUSY_GRAPH: &str = "pool.busy_us.graph";
/// Aggregate pool worker busy time in phase-3 refinement, microseconds.
pub const EXEC_POOL_BUSY_REFINE: &str = "pool.busy_us.refine";
/// Aggregate pool worker busy time in detlint's phase-A file scan,
/// microseconds.
pub const EXEC_POOL_BUSY_DETLINT: &str = "pool.busy_us.detlint";
/// Connections accepted by the query server. Traffic-driven, so every
/// serve counter is execution-dependent by construction.
pub const EXEC_SERVE_CONNECTIONS: &str = "serve.connections";
/// Request lines the query server dispatched.
pub const EXEC_SERVE_REQUESTS: &str = "serve.requests";
/// Malformed requests, read timeouts, and socket errors at the server.
pub const EXEC_SERVE_ERRORS: &str = "serve.errors";
