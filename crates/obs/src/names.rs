//! The span taxonomy and counter naming scheme (DESIGN.md §10).
//!
//! Names are `<subsystem>.<noun>` for counters and histograms, and phase
//! spans follow the pipeline: the three synthetic input stages carry their
//! subsystem name, the three bdrmapIT algorithm stages carry the paper's
//! phase numbers. Keeping every name a `&'static str` constant here — rather
//! than ad-hoc strings at call sites — is what makes the report
//! schema-stable: a renamed counter is a compile-time event, not a silently
//! forked time series.

// ---- phase spans -----------------------------------------------------------

/// Synthetic Internet generation (topo-gen).
pub const PHASE_TOPO: &str = "topo.generate";
/// Traceroute campaign simulation (traceroute).
pub const PHASE_TRACEROUTE: &str = "traceroute.campaign";
/// Alias resolution (alias).
pub const PHASE_ALIAS: &str = "alias.resolve";
/// bdrmapIT phase 1: IR graph construction (§4).
pub const PHASE_GRAPH: &str = "phase1.graph";
/// bdrmapIT phase 2: last-hop annotation (§5).
pub const PHASE_LASTHOP: &str = "phase2.lasthop";
/// bdrmapIT phase 3: iterative graph refinement (§6).
pub const PHASE_REFINE: &str = "phase3.refine";
/// Reading a dataset bundle from disk (`bdrmapit infer`).
pub const PHASE_READ_BUNDLE: &str = "io.read_bundle";

/// The five pipeline phases every complete synthetic run must traverse.
/// [`crate::RunReport::validate`] fails when any is missing.
pub const MANDATORY_PHASES: &[&str] = &[
    PHASE_TOPO,
    PHASE_TRACEROUTE,
    PHASE_ALIAS,
    PHASE_GRAPH,
    PHASE_REFINE,
];

// ---- deterministic counters ------------------------------------------------
// Identical for every `Config::threads` value; compared across thread counts
// by the determinism suite.

/// ASes in the generated topology.
pub const TOPO_ASES: &str = "topo.ases";
/// Routers in the generated topology.
pub const TOPO_ROUTERS: &str = "topo.routers";
/// Interfaces in the generated topology.
pub const TOPO_IFACES: &str = "topo.ifaces";
/// Traces collected by the campaign.
pub const TRACEROUTE_TRACES: &str = "traceroute.traces";
/// Total hop slots across all traces (responsive or not).
pub const TRACEROUTE_HOPS: &str = "traceroute.hops";
/// Responsive hops across all traces.
pub const TRACEROUTE_RESPONSIVE_HOPS: &str = "traceroute.responsive_hops";
/// Alias groups resolved.
pub const ALIAS_GROUPS: &str = "alias.groups";
/// Addresses placed in a (multi-address) alias group.
pub const ALIAS_ALIASED_ADDRS: &str = "alias.aliased_addrs";
/// Inferred routers in the IR graph.
pub const GRAPH_IRS: &str = "graph.irs";
/// IR→interface links in the IR graph.
pub const GRAPH_LINKS: &str = "graph.links";
/// Observed interfaces in the IR graph.
pub const GRAPH_IFACES: &str = "graph.ifaces";
/// IRs frozen by the last-hop phase.
pub const LASTHOP_FROZEN: &str = "lasthop.frozen";
/// Refinement runs executed (a report can cover several).
pub const REFINE_RUNS: &str = "refine.runs";
/// Refinement iterations (max across shards, summed over runs).
pub const REFINE_ITERATIONS: &str = "refine.iterations";
/// Shards in the refinement plans processed.
pub const REFINE_SHARDS: &str = "refine.shards";
/// Router annotations that changed value during a sweep.
pub const REFINE_VOTES_CHANGED: &str = "refine.votes_changed";
/// Routers carrying an annotation after refinement.
pub const REFINE_ROUTERS_ANNOTATED: &str = "refine.routers_annotated";
/// Hidden-AS detections that replaced an election result (§6.1.5).
pub const REFINE_HIDDEN_FIRINGS: &str = "refine.hidden_firings";
/// Election exceptions that fired (§6.1.3).
pub const REFINE_EXCEPTION_FIRINGS: &str = "refine.exception_firings";
/// Reallocated-prefix corrections applied (§6.1.2).
pub const REFINE_REALLOC_FIRINGS: &str = "refine.realloc_firings";
/// Link votes redirected by third-party detection (§6.1.1 lines 6–8).
pub const REFINE_THIRD_PARTY_VOTES: &str = "refine.third_party_votes";

// ---- churn counters ----------------------------------------------------------
// The streaming topology-dynamics workload (crates/churn): per-run totals
// over all epochs. Deterministic: the schedule, dirty sets, and shard reuse
// are pure functions of the seeds.

/// Epochs stepped by a churn run.
pub const CHURN_EPOCHS: &str = "churn.epochs";
/// Topology events whose preconditions held and that mutated the topology.
pub const CHURN_EVENTS_APPLIED: &str = "churn.events_applied";
/// Topology events skipped because a precondition failed (disconnecting
/// link failure, exhausted address region, single-homed reannouncement).
pub const CHURN_EVENTS_SKIPPED: &str = "churn.events_skipped";
/// `(vp, dst)` pairs re-probed by the incremental delta campaigns.
pub const CHURN_DIRTY_PAIRS: &str = "churn.dirty_pairs";
/// `(vp, dst)` pairs served from the cached corpus.
pub const CHURN_CLEAN_PAIRS: &str = "churn.clean_pairs";
/// Refinement shards re-converged by the incremental engine.
pub const CHURN_DIRTY_SHARDS: &str = "churn.dirty_shards";
/// Refinement shards whose converged annotations were replayed from the
/// fingerprint cache.
pub const CHURN_REUSED_SHARDS: &str = "churn.reused_shards";
/// Epochs that forced a full RIB/IP→AS/relationship rebuild (interdomain
/// routing changed).
pub const CHURN_RIB_REBUILDS: &str = "churn.rib_rebuilds";

/// Span: one churn epoch end to end (events through snapshot).
pub const PHASE_CHURN_EPOCH: &str = "churn.epoch";
/// Instant: a shard dirtied for incremental re-convergence (arg: shard
/// index).
pub const EV_REFINE_DIRTY_SHARD: &str = "refine.dirty_shard";

// ---- deterministic histograms ----------------------------------------------

/// Iterations to convergence, one sample per shard.
pub const HIST_SHARD_ITERATIONS: &str = "refine.shard_iterations";
/// Wavefront levels, one sample per shard.
pub const HIST_SHARD_WAVEFRONTS: &str = "refine.shard_wavefronts";

// ---- detlint static-analysis counters ----------------------------------------
// Deterministic: pure functions of the scanned source tree.

/// Source files the detlint workspace scan lexed and indexed.
pub const DETLINT_FILES: &str = "detlint.files";
/// Function definitions in the detlint symbol index.
pub const DETLINT_FNS: &str = "detlint.fns";
/// Name-matched call edges in the detlint call graph.
pub const DETLINT_CALL_EDGES: &str = "detlint.call_edges";
/// Functions seeding order taint (return hash-collection iteration order).
pub const DETLINT_TAINT_SOURCES: &str = "detlint.taint_sources";
/// Functions carrying order taint after the cross-file fixpoint.
pub const DETLINT_TAINTED_FNS: &str = "detlint.tainted_fns";

// ---- execution-dependent metrics -------------------------------------------
// Vary with thread count and scheduling (per-worker caches); reported for
// tuning but excluded from the deterministic view.

/// RelQueryCache memo hits across all refinement workers.
pub const EXEC_CACHE_HITS: &str = "asrel.cache_hits";
/// RelQueryCache memo misses across all refinement workers.
pub const EXEC_CACHE_MISSES: &str = "asrel.cache_misses";
/// Worker slots the refinement engine actually used.
pub const EXEC_REFINE_WORKERS: &str = "refine.workers";
/// Worker slots the probe-campaign sharder actually used.
pub const EXEC_CAMPAIGN_WORKERS: &str = "campaign.workers";
/// Worker slots the phase-1 graph build actually used.
pub const EXEC_GRAPH_WORKERS: &str = "graph.workers";
/// Tasks dispatched by the shared worker pool (all phases).
pub const EXEC_POOL_TASKS: &str = "pool.tasks";
/// Tasks a pool worker took from a sibling's dealt interval.
pub const EXEC_POOL_STEALS: &str = "pool.steals";
/// Aggregate pool worker busy time in the probe campaign, microseconds.
pub const EXEC_POOL_BUSY_CAMPAIGN: &str = "pool.busy_us.campaign";
/// Aggregate pool worker busy time in the phase-1 graph build, microseconds.
pub const EXEC_POOL_BUSY_GRAPH: &str = "pool.busy_us.graph";
/// Aggregate pool worker busy time in phase-3 refinement, microseconds.
pub const EXEC_POOL_BUSY_REFINE: &str = "pool.busy_us.refine";
/// Aggregate pool worker busy time in detlint's phase-A file scan,
/// microseconds.
pub const EXEC_POOL_BUSY_DETLINT: &str = "pool.busy_us.detlint";
/// Connections accepted by the query server. Traffic-driven, so every
/// serve counter is execution-dependent by construction.
pub const EXEC_SERVE_CONNECTIONS: &str = "serve.connections";
/// Request lines the query server dispatched.
pub const EXEC_SERVE_REQUESTS: &str = "serve.requests";
/// Malformed requests, read timeouts, and socket errors at the server.
pub const EXEC_SERVE_ERRORS: &str = "serve.errors";

// ---- phase-1 sub-spans -------------------------------------------------------
// Passes of the graph build, visible as nested spans under `phase1.graph`
// in the run report and on the trace's `main` track.

/// Pass 0: address interning over trace shards.
pub const PHASE1_INTERN: &str = "phase1.intern";
/// Origin-AS resolution over the interned interface space.
pub const PHASE1_ORIGINS: &str = "phase1.origins";
/// Serial IR construction from alias groups.
pub const PHASE1_IRS: &str = "phase1.irs";
/// Pass 1: link and destination extraction over trace shards.
pub const PHASE1_LINKS: &str = "phase1.links";
/// Serial reduction of per-shard link/destination observations.
pub const PHASE1_REDUCE: &str = "phase1.reduce";
/// Per-IR metadata annotation (degree, relationships, cone membership).
pub const PHASE1_METADATA: &str = "phase1.metadata";
/// Shard-plan computation over the finished graph.
pub const PHASE1_SHARD_PLAN: &str = "phase1.shard_plan";

// ---- trace tracks and events -------------------------------------------------
// Names used by `obs::trace`: tracks become Chrome `thread_name`s, events
// appear as spans (`B`/`E`) or instants (`i`) on a track. See DESIGN.md §15.

/// The coordinator track carrying recorder phase spans.
pub const TRACK_MAIN: &str = "main";
/// Per-worker pool tracks (`pool.worker0`, `pool.worker1`, ...).
pub const TRACK_POOL_WORKER: &str = "pool.worker";
/// The pool's batch-level track (dispatch and reassembly spans).
pub const TRACK_POOL_BATCHES: &str = "pool.batches";
/// Per-worker refinement tracks (`refine.worker0`, ...).
pub const TRACK_REFINE_WORKER: &str = "refine.worker";
/// Per-worker serve tracks (`serve.worker0`, ...).
pub const TRACK_SERVE_WORKER: &str = "serve.worker";
/// Span: one pool batch from deal-out to join (arg: task count).
pub const EV_POOL_BATCH: &str = "pool.batch";
/// Span: one task executing on a pool worker (arg: task index).
pub const EV_POOL_TASK: &str = "pool.task";
/// Instant: a worker stole from a sibling's interval (arg: tasks taken).
pub const EV_POOL_STEAL: &str = "pool.steal";
/// Span: index-ordered reassembly of batch results on the coordinator.
pub const EV_POOL_REASSEMBLE: &str = "pool.reassemble";
/// Span: one shard converging on a refinement worker (arg: shard index).
pub const EV_REFINE_SHARD: &str = "refine.shard";
/// Span: one lockstep refinement wave/iteration (arg: iteration index).
pub const EV_REFINE_WAVE: &str = "refine.wave";
/// Instant: probe campaign destination count (arg: destinations).
pub const EV_CAMPAIGN_DESTS: &str = "traceroute.dests";
/// Span: one request handled by a serve worker.
pub const EV_SERVE_REQUEST: &str = "serve.request";

// ---- serve per-verb metrics ---------------------------------------------------
// Execution-dependent by construction (traffic-driven); the latency
// histograms live in the server's own `ServeMetrics`, surfaced through the
// `stats` verb, while the request counters also feed the recorder.

/// Requests dispatched to the `lookup_addr` verb.
pub const EXEC_SERVE_REQ_LOOKUP_ADDR: &str = "serve.requests.lookup_addr";
/// Requests dispatched to the `lookup_prefix` verb.
pub const EXEC_SERVE_REQ_LOOKUP_PREFIX: &str = "serve.requests.lookup_prefix";
/// Requests dispatched to the `router` verb.
pub const EXEC_SERVE_REQ_ROUTER: &str = "serve.requests.router";
/// Requests dispatched to the `links_of_as` verb.
pub const EXEC_SERVE_REQ_LINKS_OF_AS: &str = "serve.requests.links_of_as";
/// Requests dispatched to the `stats` verb.
pub const EXEC_SERVE_REQ_STATS: &str = "serve.requests.stats";

/// The verbs the query server dispatches, in protocol order.
pub const SERVE_VERBS: &[&str] = &[
    "lookup_addr",
    "lookup_prefix",
    "router",
    "links_of_as",
    "stats",
];

/// Canonicalizes a request verb to its `'static` form, if known.
pub fn serve_verb(verb: &str) -> Option<&'static str> {
    SERVE_VERBS.iter().find(|&&v| v == verb).copied()
}

/// The request counter for a known verb, if any.
pub fn serve_request_counter(verb: &str) -> Option<&'static str> {
    match verb {
        "lookup_addr" => Some(EXEC_SERVE_REQ_LOOKUP_ADDR),
        "lookup_prefix" => Some(EXEC_SERVE_REQ_LOOKUP_PREFIX),
        "router" => Some(EXEC_SERVE_REQ_ROUTER),
        "links_of_as" => Some(EXEC_SERVE_REQ_LINKS_OF_AS),
        "stats" => Some(EXEC_SERVE_REQ_STATS),
        _ => None,
    }
}
