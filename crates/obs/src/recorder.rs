//! The recorder: the handle every instrumented crate writes through.

use crate::clock::{Clock, MonotonicClock};
use crate::metrics::MetricSheet;
use crate::report::RunReport;
use crate::trace::Tracer;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Accumulated per-phase wall time.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct PhaseAgg {
    pub count: u64,
    pub wall_nanos: u64,
}

#[derive(Debug, Default)]
struct State {
    sheet: MetricSheet,
    phases: BTreeMap<&'static str, PhaseAgg>,
    depth: usize,
}

#[derive(Debug)]
struct Inner {
    clock: Arc<dyn Clock>,
    trace: bool,
    tracer: Tracer,
    state: Mutex<State>,
}

/// A cloneable telemetry sink.
///
/// The default recorder is *disabled*: every call is a no-op and costs one
/// branch, so library entry points can take a `&Recorder` unconditionally.
/// An enabled recorder accumulates spans, counters, and histograms behind a
/// mutex (instrumentation sites are phase-granular or pre-merged worker
/// sheets, so the lock is far off any hot path) and snapshots into a
/// [`RunReport`]. Telemetry is write-only with respect to inference: nothing
/// in the pipeline ever reads a recorder.
#[derive(Clone, Debug, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl Recorder {
    /// The no-op recorder.
    pub fn disabled() -> Recorder {
        Recorder::default()
    }

    /// An enabled recorder on the real monotonic clock. With `trace` set,
    /// phase enter/exit lines are printed to stderr as they happen.
    pub fn new(trace: bool) -> Recorder {
        Recorder::with_clock(trace, Box::new(MonotonicClock::new()))
    }

    /// An enabled recorder on an explicit clock (tests use [`MockClock`]
    /// (crate::MockClock) for deterministic span durations).
    pub fn with_clock(trace: bool, clock: Box<dyn Clock>) -> Recorder {
        Recorder::assemble(trace, Arc::from(clock), None)
    }

    /// An enabled recorder that also collects trace events (per-track ring
    /// capacity `track_capacity`), on the real monotonic clock. The tracer
    /// shares the recorder's clock, so span wall times and trace timestamps
    /// agree.
    pub fn with_tracing(trace: bool, track_capacity: usize) -> Recorder {
        Recorder::assemble(trace, Arc::new(MonotonicClock::new()), Some(track_capacity))
    }

    /// [`Recorder::with_tracing`] on an explicit clock, for tests.
    pub fn with_clock_tracing(
        trace: bool,
        clock: Box<dyn Clock>,
        track_capacity: usize,
    ) -> Recorder {
        Recorder::assemble(trace, Arc::from(clock), Some(track_capacity))
    }

    fn assemble(trace: bool, clock: Arc<dyn Clock>, tracing: Option<usize>) -> Recorder {
        let tracer = match tracing {
            Some(capacity) => Tracer::new(clock.clone(), capacity),
            None => Tracer::disabled(),
        };
        Recorder {
            inner: Some(Arc::new(Inner {
                clock,
                trace,
                tracer,
                state: Mutex::new(State::default()),
            })),
        }
    }

    /// True when this recorder accumulates anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The trace sink this recorder was built with (disabled unless
    /// constructed via [`Recorder::with_tracing`] /
    /// [`Recorder::with_clock_tracing`]). Cheap to clone and hand to
    /// subsystems that record per-worker events.
    pub fn tracer(&self) -> Tracer {
        self.inner
            .as_ref()
            .map(|i| i.tracer.clone())
            .unwrap_or_default()
    }

    /// Enters a phase span; the span records its wall time when dropped.
    #[must_use = "a span records its duration when dropped; binding it to _ ends it immediately"]
    pub fn span(&self, name: &'static str) -> Span {
        let Some(inner) = &self.inner else {
            return Span {
                rec: Recorder::disabled(),
                name,
                start_nanos: 0,
            };
        };
        let start_nanos = inner.clock.now_nanos();
        inner.tracer.begin_main(name, 0);
        if inner.trace {
            let depth = {
                let mut st = inner.state.lock().expect("obs state lock");
                let d = st.depth;
                st.depth += 1;
                d
            };
            eprintln!("[obs] {:indent$}-> {name}", "", indent = depth * 2);
        }
        Span {
            rec: self.clone(),
            name,
            start_nanos,
        }
    }

    /// Adds `n` to a deterministic counter.
    pub fn add(&self, name: &'static str, n: u64) {
        if let Some(inner) = &self.inner {
            inner
                .state
                .lock()
                .expect("obs state lock")
                .sheet
                .add(name, n);
        }
    }

    /// Adds one to a deterministic counter.
    pub fn inc(&self, name: &'static str) {
        self.add(name, 1);
    }

    /// Adds `n` to an execution-dependent counter.
    pub fn add_exec(&self, name: &'static str, n: u64) {
        if let Some(inner) = &self.inner {
            inner
                .state
                .lock()
                .expect("obs state lock")
                .sheet
                .add_exec(name, n);
        }
    }

    /// Records one histogram sample.
    pub fn record(&self, name: &'static str, value: u64) {
        if let Some(inner) = &self.inner {
            inner
                .state
                .lock()
                .expect("obs state lock")
                .sheet
                .record(name, value);
        }
    }

    /// Folds a pre-merged [`MetricSheet`] (e.g. the deterministic merge of
    /// per-worker sheets) into the recorder.
    pub fn absorb(&self, sheet: &MetricSheet) {
        if let Some(inner) = &self.inner {
            inner
                .state
                .lock()
                .expect("obs state lock")
                .sheet
                .merge(sheet);
        }
    }

    /// Snapshots everything recorded so far into a [`RunReport`].
    pub fn report(&self) -> RunReport {
        let Some(inner) = &self.inner else {
            return RunReport::empty();
        };
        let st = inner.state.lock().expect("obs state lock");
        RunReport::from_parts(&st.sheet, &st.phases)
    }

    fn finish_span(&self, name: &'static str, start_nanos: u64) {
        let Some(inner) = &self.inner else { return };
        inner.tracer.end_main(name);
        let elapsed = inner.clock.now_nanos().saturating_sub(start_nanos);
        let mut st = inner.state.lock().expect("obs state lock");
        let agg = st.phases.entry(name).or_default();
        agg.count += 1;
        agg.wall_nanos += elapsed;
        if inner.trace {
            st.depth = st.depth.saturating_sub(1);
            let depth = st.depth;
            drop(st);
            eprintln!(
                "[obs] {:indent$}<- {name}  {ms:.3} ms",
                "",
                indent = depth * 2,
                ms = elapsed as f64 / 1e6
            );
        }
    }
}

/// A phase span guard: created by [`Recorder::span`], records its wall time
/// into the recorder when dropped.
#[derive(Debug)]
pub struct Span {
    rec: Recorder,
    name: &'static str,
    start_nanos: u64,
}

impl Span {
    /// The phase name this span times.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.rec.finish_span(self.name, self.start_nanos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::MockClock;

    #[test]
    fn disabled_recorder_is_a_noop() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        rec.inc("x");
        rec.add_exec("e", 3);
        rec.record("h", 1);
        {
            let _s = rec.span("phase");
        }
        let report = rec.report();
        assert!(report.counters.is_empty());
        assert!(report.phases.is_empty());
    }

    #[test]
    fn span_durations_come_from_the_clock() {
        let clock = MockClock::new();
        let rec = Recorder::with_clock(false, Box::new(clock.clone()));
        {
            let _outer = rec.span("outer");
            clock.advance(2_000_000); // 2 ms
            {
                let _inner = rec.span("inner");
                clock.advance(500_000); // 0.5 ms
            }
        }
        let report = rec.report();
        assert_eq!(report.phases["outer"].count, 1);
        assert!((report.phases["outer"].wall_ms - 2.5).abs() < 1e-9);
        assert!((report.phases["inner"].wall_ms - 0.5).abs() < 1e-9);
    }

    #[test]
    fn repeated_spans_aggregate() {
        let clock = MockClock::new();
        let rec = Recorder::with_clock(false, Box::new(clock.clone()));
        for _ in 0..3 {
            let _s = rec.span("p");
            clock.advance(1_000_000);
        }
        let report = rec.report();
        assert_eq!(report.phases["p"].count, 3);
        assert!((report.phases["p"].wall_ms - 3.0).abs() < 1e-9);
    }

    #[test]
    fn counters_and_sheets_land_in_the_report() {
        let rec = Recorder::with_clock(false, Box::new(MockClock::new()));
        rec.add("a", 2);
        rec.inc("a");
        rec.add_exec("e", 7);
        rec.record("h", 4);
        let mut sheet = MetricSheet::new();
        sheet.add("a", 10);
        sheet.record("h", 4);
        rec.absorb(&sheet);
        let report = rec.report();
        assert_eq!(report.counters["a"], 13);
        assert_eq!(report.exec["e"], 7);
        assert_eq!(report.histograms["h"].count, 2);
    }

    #[test]
    fn clones_share_one_sink() {
        let rec = Recorder::with_clock(false, Box::new(MockClock::new()));
        let other = rec.clone();
        other.inc("x");
        rec.inc("x");
        assert_eq!(rec.report().counters["x"], 2);
    }
}
