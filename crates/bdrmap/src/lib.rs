//! bdrmap baseline (Luckie et al., IMC 2016) — inference component.
//!
//! bdrmap maps the interdomain borders of a *single* network hosting the
//! vantage point. Its data-collection component (reactive probing from the
//! VP) is replaced by the workspace's traceroute simulator; this crate
//! reimplements the inference component in condensed form:
//!
//! 1. Identify the VP network's **internal** routers: every router that
//!    appears *before* an interface announced by the VP network in some
//!    traceroute (§2 of the bdrmapIT paper, describing bdrmap).
//! 2. Classify the routers at and beyond the border, using bdrmap's core
//!    conventions: interdomain links are numbered from the provider's
//!    space, so a VP-addressed router past the last VP hop usually belongs
//!    to the neighbor; AS relationships constrain which neighbor; silent
//!    edge networks are attributed through the destinations probed.
//!
//! bdrmap only annotates the first AS boundary — the documented limitation
//! (bdrmapIT's Fig. 15 regression test exists to show the generalized tool
//! does not regress on this specialty).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use as_rel::{AsRelationships, CustomerCones};
use bdrmapit_core::{Config as CoreConfig, IrGraph};
use bgp::IpToAs;
use net_types::{Asn, Counter};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use traceroute::Trace;

/// One inferred border link: a router operated by `owner` attaches to the
/// VP network.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BorderLink {
    /// An interface address on the far router.
    pub addr: u32,
    /// The inferred operator of the far router.
    pub owner: Asn,
}

/// bdrmap's output: ownership for routers in and around the VP network.
#[derive(Clone, Debug)]
pub struct BdrmapResult {
    /// The VP network.
    pub vp_as: Asn,
    /// Inferred owner per observed interface address (only addresses within
    /// bdrmap's first-boundary scope are present).
    pub owner: BTreeMap<u32, Asn>,
    /// The inferred interdomain links of the VP network.
    pub links: Vec<BorderLink>,
}

/// Runs bdrmap inference over a single-VP corpus.
///
/// `vp_as` may be supplied explicitly; otherwise it is inferred from the
/// majority origin of the probes' source addresses.
pub fn run(
    traces: &[Trace],
    aliases: &alias::AliasSets,
    ip2as: &IpToAs,
    rels: &AsRelationships,
    vp_as: Option<Asn>,
) -> BdrmapResult {
    let cones = CustomerCones::compute(rels);
    let vp_as = vp_as.unwrap_or_else(|| infer_vp_as(traces, ip2as));
    let graph = IrGraph::build(traces, aliases, ip2as, &CoreConfig::default(), rels, &cones);

    // ---- step 1: internal routers ----
    // A router is internal when, in some trace, it appears strictly before
    // a hop whose address the VP network announces.
    let mut internal: BTreeSet<bdrmapit_core::IrId> = BTreeSet::new();
    for t in traces {
        let hops: Vec<(u8, traceroute::Hop)> = t.responsive().collect();
        let last_vp = hops
            .iter()
            .rposition(|&(_, h)| ip2as.origin(h.addr) == vp_as);
        let Some(last_vp) = last_vp else { continue };
        for &(_, h) in &hops[..last_vp] {
            if let Some(ir) = graph.ir_of_addr(h.addr) {
                internal.insert(ir);
            }
        }
    }

    // ---- step 2: scope = internal ∪ their successors ----
    let mut scope: BTreeSet<bdrmapit_core::IrId> = internal.clone();
    for &ir in &internal {
        for link in &graph.irs[ir.0 as usize].links {
            scope.insert(graph.iface_ir[link.dst.0 as usize]);
        }
    }
    // Routers holding VP-announced addresses are always in scope, and so
    // are their immediate successors ("routers immediately subsequent to
    // the network boundary", §2).
    let mut vp_addressed: BTreeSet<bdrmapit_core::IrId> = BTreeSet::new();
    for (i, origin) in graph.iface_origin.iter().enumerate() {
        if origin.asn == vp_as {
            vp_addressed.insert(graph.iface_ir[i]);
        }
    }
    for &ir in &vp_addressed {
        scope.insert(ir);
        for link in &graph.irs[ir.0 as usize].links {
            scope.insert(graph.iface_ir[link.dst.0 as usize]);
        }
    }

    // ---- step 3: ownership ----
    let mut owner_by_ir: BTreeMap<bdrmapit_core::IrId, Asn> = BTreeMap::new();
    for &ir_id in &scope {
        let ir = &graph.irs[ir_id.0 as usize];
        let asn = if internal.contains(&ir_id) {
            vp_as
        } else {
            classify_boundary(ir, &graph, ip2as, rels, &cones, vp_as)
        };
        if asn.is_some() {
            owner_by_ir.insert(ir_id, asn);
        }
    }

    // ---- outputs ----
    let mut owner: BTreeMap<u32, Asn> = BTreeMap::new();
    for (&ir_id, &asn) in &owner_by_ir {
        for &ifidx in &graph.irs[ir_id.0 as usize].ifaces {
            owner.insert(graph.iface_addrs[ifidx.0 as usize], asn);
        }
    }
    let mut links: BTreeSet<BorderLink> = BTreeSet::new();
    for (&ir_id, &asn) in &owner_by_ir {
        if asn == vp_as {
            // Links from VP routers to foreign-owned successors.
            for link in &graph.irs[ir_id.0 as usize].links {
                let succ_ir = graph.iface_ir[link.dst.0 as usize];
                if let Some(&far) = owner_by_ir.get(&succ_ir) {
                    if far != vp_as {
                        links.insert(BorderLink {
                            addr: graph.iface_addrs[link.dst.0 as usize],
                            owner: far,
                        });
                    }
                }
            }
        } else {
            // A foreign-owned router holding VP-space interfaces is itself
            // the far end of a border link.
            for &ifidx in &graph.irs[ir_id.0 as usize].ifaces {
                if graph.iface_origin[ifidx.0 as usize].asn == vp_as {
                    links.insert(BorderLink {
                        addr: graph.iface_addrs[ifidx.0 as usize],
                        owner: asn,
                    });
                }
            }
        }
    }

    BdrmapResult {
        vp_as,
        owner,
        links: links.into_iter().collect(),
    }
}

/// Majority origin AS of the probe source addresses.
pub fn infer_vp_as(traces: &[Trace], ip2as: &IpToAs) -> Asn {
    let mut votes: Counter<Asn> = Counter::new();
    for t in traces {
        let o = ip2as.origin(t.src);
        if o.is_some() {
            votes.add(o);
        }
    }
    votes.max_keys().into_iter().next().unwrap_or(Asn::NONE)
}

/// Boundary ownership for a non-internal router in scope.
fn classify_boundary(
    ir: &bdrmapit_core::Ir,
    graph: &IrGraph,
    _ip2as: &IpToAs,
    rels: &AsRelationships,
    cones: &CustomerCones,
    vp_as: Asn,
) -> Asn {
    let foreign_origins: BTreeSet<Asn> =
        ir.origins.iter().copied().filter(|&o| o != vp_as).collect();
    let subsequent: BTreeSet<Asn> = ir
        .links
        .iter()
        .map(|l| graph.iface_origin[l.dst.0 as usize].asn)
        .filter(|a| a.is_some() && *a != vp_as)
        .collect();

    if ir.origins.contains(&vp_as) && foreign_origins.is_empty() {
        // All interfaces in VP space. Past the border, the industry
        // convention (provider addresses the link) means a customer border
        // router; the single subsequent AS with a relationship to the VP
        // identifies it.
        let related: Vec<Asn> = subsequent
            .iter()
            .copied()
            .filter(|&s| rels.has_relationship(s, vp_as))
            .collect();
        if related.len() == 1 {
            return related[0];
        }
        if subsequent.is_empty() {
            // Silent edge: attribute through the probed destinations.
            let related_dests: Vec<Asn> = ir
                .dests
                .iter()
                .copied()
                .filter(|&d| d != vp_as && rels.has_relationship(d, vp_as))
                .collect();
            if let Some(d) = cones.smallest_cone(related_dests) {
                return d;
            }
            // No foreign evidence at all: a VP-internal leaf.
            return vp_as;
        }
        // Several foreign neighbors behind one router: the VP's own border
        // aggregation router.
        return vp_as;
    }

    // Foreign-addressed interfaces present: vote among them, preferring
    // ASes with a relationship to the VP (bdrmap reasons with relationships
    // when IP paths disagree with BGP policy).
    let mut votes: Counter<Asn> = Counter::new();
    for &ifidx in &ir.ifaces {
        let o = graph.iface_origin[ifidx.0 as usize].asn;
        if o.is_some() && o != vp_as {
            votes.add(o);
        }
    }
    let related: Vec<Asn> = votes
        .max_keys()
        .into_iter()
        .filter(|&a| rels.has_relationship(a, vp_as))
        .collect();
    if let Some(a) = cones.smallest_cone(related) {
        return a;
    }
    cones.smallest_cone(votes.max_keys()).unwrap_or(Asn::NONE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_types::Prefix;
    use traceroute::{Hop, ReplyType, StopReason};

    fn tr(src: u32, dst: u32, hops: &[u32]) -> Trace {
        Trace {
            monitor: "vp".into(),
            src,
            dst,
            hops: hops
                .iter()
                .map(|&a| {
                    Some(Hop {
                        addr: a,
                        reply: ReplyType::TimeExceeded,
                    })
                })
                .collect(),
            stop: StopReason::GapLimit,
        }
    }

    fn a(s: &str) -> u32 {
        net_types::parse_ipv4(s).unwrap()
    }

    fn oracle() -> IpToAs {
        IpToAs::from_pairs([
            ("10.1.0.0/16".parse::<Prefix>().unwrap(), Asn(1)),
            ("10.2.0.0/16".parse::<Prefix>().unwrap(), Asn(2)),
            ("10.3.0.0/16".parse::<Prefix>().unwrap(), Asn(3)),
        ])
    }

    fn rels() -> AsRelationships {
        let mut r = AsRelationships::new();
        r.add_p2c(Asn(1), Asn(2));
        r.add_p2c(Asn(1), Asn(3));
        r
    }

    #[test]
    fn vp_as_inferred_from_sources() {
        let traces = [tr(a("10.1.0.1"), a("10.2.0.9"), &[a("10.1.0.2")])];
        assert_eq!(infer_vp_as(&traces, &oracle()), Asn(1));
    }

    #[test]
    fn internal_routers_owned_by_vp() {
        // 10.1.0.2 appears before another VP-space hop → internal.
        let traces = [tr(
            a("10.1.0.1"),
            a("10.2.0.9"),
            &[a("10.1.0.2"), a("10.1.0.3"), a("10.2.0.1")],
        )];
        let res = run(
            &traces,
            &alias::AliasSets::empty(),
            &oracle(),
            &rels(),
            None,
        );
        assert_eq!(res.vp_as, Asn(1));
        assert_eq!(res.owner.get(&a("10.1.0.2")), Some(&Asn(1)));
    }

    #[test]
    fn customer_border_router_in_vp_space() {
        // Convention: the VP (provider) numbers the link; 10.1.0.3 is on
        // AS2's border router, revealed by its AS2 successor.
        let traces = [tr(
            a("10.1.0.1"),
            a("10.2.0.9"),
            &[a("10.1.0.2"), a("10.1.0.3"), a("10.2.0.1"), a("10.2.0.2")],
        )];
        let res = run(
            &traces,
            &alias::AliasSets::empty(),
            &oracle(),
            &rels(),
            None,
        );
        assert_eq!(res.owner.get(&a("10.1.0.3")), Some(&Asn(2)));
        assert!(res
            .links
            .iter()
            .any(|l| l.owner == Asn(2) && l.addr == a("10.1.0.3")));
    }

    #[test]
    fn silent_edge_attributed_by_destination() {
        // Trace toward AS3 dies right after a VP-space router with no
        // successors: the dest heuristic names AS3.
        let traces = [
            tr(
                a("10.1.0.1"),
                a("10.3.0.9"),
                &[a("10.1.0.2"), a("10.1.0.7")],
            ),
            // Keep 10.1.0.2 internal via another trace.
            tr(
                a("10.1.0.1"),
                a("10.2.0.9"),
                &[a("10.1.0.2"), a("10.1.0.3"), a("10.2.0.1")],
            ),
        ];
        let res = run(
            &traces,
            &alias::AliasSets::empty(),
            &oracle(),
            &rels(),
            None,
        );
        assert_eq!(res.owner.get(&a("10.1.0.7")), Some(&Asn(3)));
    }

    #[test]
    fn foreign_addressed_router_votes() {
        let traces = [tr(
            a("10.1.0.1"),
            a("10.2.0.9"),
            &[a("10.1.0.2"), a("10.1.0.3"), a("10.2.0.1"), a("10.2.0.2")],
        )];
        let res = run(
            &traces,
            &alias::AliasSets::empty(),
            &oracle(),
            &rels(),
            None,
        );
        // 10.2.0.1's router: foreign origin AS2 related to VP → AS2.
        assert_eq!(res.owner.get(&a("10.2.0.1")), Some(&Asn(2)));
    }

    #[test]
    fn scope_is_first_boundary_only() {
        // AS3 appears two AS hops away via AS2 — bdrmap does not annotate
        // routers beyond its first boundary unless they hold VP addresses
        // or directly follow an internal router.
        let traces = [tr(
            a("10.1.0.1"),
            a("10.3.0.9"),
            &[
                a("10.1.0.2"),
                a("10.1.0.3"),
                a("10.2.0.1"),
                a("10.2.0.2"),
                a("10.3.0.1"),
            ],
        )];
        let res = run(
            &traces,
            &alias::AliasSets::empty(),
            &oracle(),
            &rels(),
            None,
        );
        assert!(
            !res.owner.contains_key(&a("10.3.0.1")),
            "bdrmap must not reach past the first boundary"
        );
    }
}
