//! Offline vendored subset of the `criterion` benchmarking API.
//!
//! Reproduces the harness surface the workspace's `harness = false` benches
//! use: `Criterion`, `benchmark_group` (with `sample_size` / `throughput`),
//! `bench_function`, `bench_with_input`, `BenchmarkId::from_parameter`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is simplified: per benchmark it warms up briefly, takes
//! `sample_size` wall-clock samples (auto-scaling iterations per sample so
//! each sample is long enough to time), and prints min/median/mean. The
//! `--test` flag (what `cargo bench -- --test` and CI smoke runs pass) runs
//! every benchmark body exactly once without timing.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier, same contract as criterion's `black_box`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Whether the binary was invoked in `--test` smoke mode.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Optional substring filter: first free CLI argument, as criterion accepts.
fn name_filter() -> Option<String> {
    std::env::args()
        .skip(1)
        .find(|a| !a.starts_with("--") && !a.is_empty())
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id rendering the parameter only (criterion's `from_parameter`).
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }

    /// An id with an explicit function name and parameter.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            text: format!("{function_name}/{parameter}"),
        }
    }
}

/// Accepts both `&str` names and [`BenchmarkId`]s in `bench_*` calls.
pub trait IntoBenchmarkId {
    /// The display text of the id.
    fn into_text(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_text(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_text(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_text(self) -> String {
        self.text
    }
}

/// Runs benchmark bodies and collects timing samples.
pub struct Bencher {
    samples: usize,
    quick: bool,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Times `body` (or runs it once in `--test` mode).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        if self.quick {
            black_box(body());
            return;
        }
        // Warm-up: find an iteration count that makes one sample >= ~200us,
        // bounded so very slow bodies still only run once per sample.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(body());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_micros(200) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        self.durations.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(body());
            }
            self.durations.push(start.elapsed() / iters as u32);
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} us", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

fn report(name: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    if bencher.quick {
        println!("test {name} ... ok (--test mode, ran once)");
        return;
    }
    let mut sorted = bencher.durations.clone();
    sorted.sort();
    let min = sorted.first().copied().unwrap_or_default();
    let median = sorted.get(sorted.len() / 2).copied().unwrap_or_default();
    let mean = sorted.iter().sum::<Duration>() / sorted.len().max(1) as u32;
    let mut line = format!(
        "{name:<48} min {:>10}  median {:>10}  mean {:>10}",
        format_duration(min),
        format_duration(median),
        format_duration(mean),
    );
    if let Some(Throughput::Elements(n)) = throughput {
        if median.as_nanos() > 0 {
            let rate = n as f64 / median.as_secs_f64();
            line.push_str(&format!("  ({rate:.0} elem/s)"));
        }
    }
    println!("{line}");
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
        }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, f: F) {
        run_one(id.into_text(), self.sample_size, None, f);
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size,
            throughput: None,
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    if let Some(filter) = name_filter() {
        if !name.contains(&filter) {
            return;
        }
    }
    let mut bencher = Bencher {
        samples,
        quick: test_mode(),
        durations: Vec::new(),
    };
    f(&mut bencher);
    report(&name, &bencher, throughput);
}

/// A group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Annotates per-iteration throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into_text());
        run_one(name, self.sample_size, self.throughput, f);
        self
    }

    /// Runs a benchmark parameterized over `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into_text());
        run_one(name, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (settings die with it).
    pub fn finish(self) {}
}

/// Defines a benchmark group function from target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Defines `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
