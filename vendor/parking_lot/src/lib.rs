//! Offline vendored subset of the `parking_lot` API.
//!
//! Wraps `std::sync::Mutex` behind parking_lot's poison-free interface:
//! `lock()` returns the guard directly, and a poisoned std mutex is
//! transparently recovered (parking_lot has no poisoning).

use std::fmt;
use std::sync::TryLockError;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutex that never poisons.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}
