//! Offline vendored subset of the `serde_json` API.
//!
//! Thin façade over the vendored `serde` crate's JSON value tree: the
//! workspace uses only [`to_string`], [`to_string_pretty`], and
//! [`from_str`], with [`Error`] implementing `std::error::Error`.

use serde::json::{parse, to_value, Value};
use std::fmt;

/// A JSON serialization or deserialization error.
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error {
            message: msg.to_string(),
        }
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error {
            message: msg.to_string(),
        }
    }
}

/// A `Result` alias with [`Error`] plugged in.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let tree = to_value(value).map_err(|message| Error { message })?;
    let mut out = String::new();
    serde::json::write_json(&tree, &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` to a pretty-printed JSON string (two-space indent,
/// matching real serde_json).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let tree = to_value(value).map_err(|message| Error { message })?;
    let mut out = String::new();
    serde::json::write_json(&tree, &mut out, Some(2), 0);
    Ok(out)
}

/// Deserializes a value from JSON text.
pub fn from_str<T: for<'de> serde::Deserialize<'de>>(text: &str) -> Result<T> {
    let tree = parse(text).map_err(|message| Error { message })?;
    serde::json::from_value(tree).map_err(|message| Error { message })
}

/// Deserializes a value from an already-parsed [`Value`].
pub fn from_value<T: for<'de> serde::Deserialize<'de>>(value: Value) -> Result<T> {
    serde::json::from_value(value).map_err(|message| Error { message })
}
