//! Offline vendored subset of `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! vendored `serde` crate's JSON-value data model, without syn or quote: the
//! input `TokenStream` is walked directly and the generated impl is built as
//! a string and re-parsed.
//!
//! Supported shapes (exactly what the workspace uses):
//! * named structs, with `#[serde(skip)]` fields (skipped on serialize,
//!   `Default::default()` on deserialize) — `Option` fields tolerate a
//!   missing key;
//! * one-field tuple structs (newtype delegation; `#[serde(transparent)]`
//!   has the same meaning);
//! * enums with unit variants (as `"Name"`) and single-payload tuple
//!   variants (as `{"Name": payload}`);
//! * generic parameters with inline bounds (serialization bounds appended).

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------------

struct Input {
    name: String,
    /// Type/lifetime params with their declared bounds, in order.
    params: Vec<Param>,
    where_clause: String,
    data: Data,
}

struct Param {
    /// `K: Ord` or `T` or `'a`, verbatim.
    decl: String,
    /// Just `K` / `T` / `'a`.
    name: String,
    is_lifetime: bool,
}

enum Data {
    NamedStruct {
        fields: Vec<Field>,
        transparent: bool,
    },
    TupleStruct {
        /// Types of the tuple fields.
        types: Vec<String>,
    },
    Enum {
        variants: Vec<Variant>,
    },
}

struct Field {
    name: String,
    ty: String,
    skip: bool,
}

struct Variant {
    name: String,
    /// Payload type for single-field tuple variants.
    payload: Option<String>,
}

// ---------------------------------------------------------------------------
// Token walking
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn peek_ident(&self) -> Option<String> {
        match self.peek() {
            Some(TokenTree::Ident(i)) => Some(i.to_string()),
            _ => None,
        }
    }

    fn peek_punct(&self) -> Option<char> {
        match self.peek() {
            Some(TokenTree::Punct(p)) => Some(p.as_char()),
            _ => None,
        }
    }

    /// Consumes leading attributes; returns true if any consumed `#[serde(..)]`
    /// attribute contains `word` as a path segment.
    fn take_attrs(&mut self, word: &str) -> bool {
        let mut found = false;
        while self.peek_punct() == Some('#') {
            self.next();
            match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    let text = g.stream().to_string();
                    if text.starts_with("serde") && attr_has_word(&text, word) {
                        found = true;
                    }
                }
                other => panic!("expected attribute group, found {other:?}"),
            }
        }
        found
    }

    fn skip_visibility(&mut self) {
        if self.peek_ident().as_deref() == Some("pub") {
            self.next();
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.next();
                }
            }
        }
    }
}

/// Whether `serde ( a , b )` attribute text contains `word` as one element.
fn attr_has_word(attr_text: &str, word: &str) -> bool {
    attr_text
        .split(|c: char| !(c.is_alphanumeric() || c == '_'))
        .any(|piece| piece == word)
}

fn tokens_to_string(tokens: &[TokenTree]) -> String {
    let stream: TokenStream = tokens.iter().cloned().collect();
    stream.to_string()
}

/// Parses `<...>` generics (cursor positioned at `<`) into params.
fn parse_generics(cur: &mut Cursor) -> Vec<Param> {
    assert_eq!(cur.peek_punct(), Some('<'));
    cur.next();
    let mut depth = 1usize;
    let mut pieces: Vec<Vec<TokenTree>> = vec![Vec::new()];
    while depth > 0 {
        let tok = cur.next().expect("unterminated generics");
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                pieces.push(Vec::new());
                continue;
            }
            _ => {}
        }
        pieces.last_mut().expect("non-empty").push(tok);
    }
    pieces
        .into_iter()
        .filter(|p| !p.is_empty())
        .map(|tokens| {
            let is_lifetime =
                matches!(&tokens[0], TokenTree::Punct(p) if p.as_char() == '\'');
            let name = if is_lifetime {
                format!("'{}", tokens[1])
            } else {
                tokens[0].to_string()
            };
            Param {
                decl: tokens_to_string(&tokens),
                name,
                is_lifetime,
            }
        })
        .collect()
}

/// Splits a brace/paren group's tokens at top-level commas.
fn split_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut depth = 0usize;
    for tok in stream {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' && depth > 0 => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                out.push(Vec::new());
                continue;
            }
            _ => {}
        }
        out.last_mut().expect("non-empty").push(tok);
    }
    out.retain(|p| !p.is_empty());
    out
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    split_commas(stream)
        .into_iter()
        .map(|tokens| {
            let mut cur = Cursor {
                tokens,
                pos: 0,
            };
            let skip = cur.take_attrs("skip");
            cur.skip_visibility();
            let name = match cur.next() {
                Some(TokenTree::Ident(i)) => i.to_string(),
                other => panic!("expected field name, found {other:?}"),
            };
            match cur.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                other => panic!("expected ':' after field name, found {other:?}"),
            }
            let ty = tokens_to_string(&cur.tokens[cur.pos..]);
            let name = name.strip_prefix("r#").unwrap_or(&name).to_string();
            Field { name, ty, skip }
        })
        .collect()
}

fn parse_tuple_fields(stream: TokenStream) -> Vec<String> {
    split_commas(stream)
        .into_iter()
        .map(|tokens| {
            let mut cur = Cursor {
                tokens,
                pos: 0,
            };
            cur.take_attrs("");
            cur.skip_visibility();
            tokens_to_string(&cur.tokens[cur.pos..])
        })
        .collect()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_commas(stream)
        .into_iter()
        .map(|tokens| {
            let mut cur = Cursor {
                tokens,
                pos: 0,
            };
            cur.take_attrs("");
            let name = match cur.next() {
                Some(TokenTree::Ident(i)) => i.to_string(),
                other => panic!("expected variant name, found {other:?}"),
            };
            let payload = match cur.next() {
                None => None,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let types = parse_tuple_fields(g.stream());
                    match types.len() {
                        1 => Some(types.into_iter().next().expect("one payload")),
                        n => panic!("variant `{name}`: {n}-field payloads unsupported"),
                    }
                }
                other => panic!("variant `{name}`: unsupported shape {other:?}"),
            };
            Variant { name, payload }
        })
        .collect()
}

fn parse_input(input: TokenStream) -> Input {
    let mut cur = Cursor::new(input);
    let transparent = cur.take_attrs("transparent");
    cur.skip_visibility();
    let kind = match cur.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    let name = match cur.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    let params = if cur.peek_punct() == Some('<') {
        parse_generics(&mut cur)
    } else {
        Vec::new()
    };

    // Tuple struct body comes before any where clause.
    if kind == "struct" {
        if let Some(TokenTree::Group(g)) = cur.peek() {
            if g.delimiter() == Delimiter::Parenthesis {
                let types = parse_tuple_fields(g.stream());
                cur.next();
                let where_clause = collect_where(&mut cur);
                return Input {
                    name,
                    params,
                    where_clause,
                    data: Data::TupleStruct { types },
                };
            }
        }
    }

    let where_clause = collect_where(&mut cur);
    let body = match cur.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("expected braced body, found {other:?}"),
    };
    let data = if kind == "struct" {
        Data::NamedStruct {
            fields: parse_named_fields(body),
            transparent,
        }
    } else {
        Data::Enum {
            variants: parse_variants(body),
        }
    };
    Input {
        name,
        params,
        where_clause,
        data,
    }
}

/// Collects a `where ...` clause (if present) up to the body or `;`.
fn collect_where(cur: &mut Cursor) -> String {
    if cur.peek_ident().as_deref() != Some("where") {
        return String::new();
    }
    let start = cur.pos;
    while let Some(tok) = cur.peek() {
        match tok {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => break,
            TokenTree::Punct(p) if p.as_char() == ';' => break,
            _ => {
                cur.pos += 1;
            }
        }
    }
    tokens_to_string(&cur.tokens[start..cur.pos])
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

/// `impl<...>` generics with `extra` bound appended to every type param,
/// plus the bare type arguments for the self type.
fn impl_pieces(input: &Input, extra_bound: &str, extra_lifetime: Option<&str>) -> (String, String) {
    let mut decls: Vec<String> = Vec::new();
    if let Some(lt) = extra_lifetime {
        decls.push(lt.to_string());
    }
    let mut args: Vec<String> = Vec::new();
    for p in &input.params {
        if p.is_lifetime {
            decls.push(p.decl.clone());
        } else if p.decl.contains(':') {
            decls.push(format!("{} + {}", p.decl, extra_bound));
        } else {
            decls.push(format!("{}: {}", p.decl, extra_bound));
        }
        args.push(p.name.clone());
    }
    let impl_generics = if decls.is_empty() {
        String::new()
    } else {
        format!("<{}>", decls.join(", "))
    };
    let type_args = if args.is_empty() {
        String::new()
    } else {
        format!("<{}>", args.join(", "))
    };
    (impl_generics, type_args)
}

const SER_BOUND: &str = "::serde::Serialize";
const DE_BOUND: &str = "for<'serde_de> ::serde::Deserialize<'serde_de>";

fn ser_err() -> &'static str {
    "<S::Error as ::serde::ser::Error>::custom"
}

fn de_err() -> &'static str {
    "<D::Error as ::serde::de::Error>::custom"
}

fn gen_serialize(input: &Input) -> String {
    let (impl_generics, type_args) = impl_pieces(input, SER_BOUND, None);
    let name = &input.name;
    let where_clause = &input.where_clause;
    let body = match &input.data {
        Data::TupleStruct { types } => {
            assert_eq!(
                types.len(),
                1,
                "`{name}`: only one-field tuple structs are supported"
            );
            "::serde::Serialize::serialize(&self.0, serializer)".to_string()
        }
        Data::NamedStruct {
            fields,
            transparent,
        } => {
            if *transparent {
                let real: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
                assert_eq!(real.len(), 1, "`{name}`: transparent needs one field");
                format!(
                    "::serde::Serialize::serialize(&self.{}, serializer)",
                    real[0].name
                )
            } else {
                let mut out = String::from(
                    "let mut fields: ::std::vec::Vec<(::std::string::String, \
                     ::serde::json::Value)> = ::std::vec::Vec::new();\n",
                );
                for f in fields.iter().filter(|f| !f.skip) {
                    out.push_str(&format!(
                        "fields.push((\"{fname}\".to_string(), \
                         ::serde::json::to_value(&self.{fname}).map_err({err})?));\n",
                        fname = f.name,
                        err = ser_err(),
                    ));
                }
                out.push_str(
                    "serializer.serialize_json_value(::serde::json::Value::Object(fields))",
                );
                out
            }
        }
        Data::Enum { variants } => {
            let mut arms = String::new();
            for v in variants {
                match &v.payload {
                    None => arms.push_str(&format!(
                        "{name}::{v} => serializer.serialize_json_value(\
                         ::serde::json::Value::String(\"{v}\".to_string())),\n",
                        v = v.name,
                    )),
                    Some(_) => arms.push_str(&format!(
                        "{name}::{v}(inner) => {{\n\
                         let payload = ::serde::json::to_value(inner).map_err({err})?;\n\
                         serializer.serialize_json_value(::serde::json::Value::Object(\
                         vec![(\"{v}\".to_string(), payload)]))\n}}\n",
                        v = v.name,
                        err = ser_err(),
                    )),
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl{impl_generics} ::serde::Serialize for {name}{type_args} {where_clause} {{\n\
         fn serialize<S: ::serde::Serializer>(&self, serializer: S) \
         -> ::std::result::Result<S::Ok, S::Error> {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let (impl_generics, type_args) = impl_pieces(input, DE_BOUND, Some("'de"));
    let name = &input.name;
    let where_clause = &input.where_clause;
    let body = match &input.data {
        Data::TupleStruct { types } => {
            assert_eq!(
                types.len(),
                1,
                "`{name}`: only one-field tuple structs are supported"
            );
            format!("::serde::Deserialize::deserialize(deserializer).map({name})")
        }
        Data::NamedStruct {
            fields,
            transparent,
        } => {
            if *transparent {
                let real: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
                assert_eq!(real.len(), 1, "`{name}`: transparent needs one field");
                let mut ctor = format!(
                    "{}: ::serde::Deserialize::deserialize(deserializer)?,\n",
                    real[0].name
                );
                for f in fields.iter().filter(|f| f.skip) {
                    ctor.push_str(&format!(
                        "{}: ::core::default::Default::default(),\n",
                        f.name
                    ));
                }
                format!("::std::result::Result::Ok({name} {{\n{ctor}}})")
            } else {
                let mut out = String::from(
                    "let object = deserializer.take_json_value()?\
                     .into_object().map_err(",
                );
                out.push_str(de_err());
                out.push_str(")?;\n");
                for f in fields.iter().filter(|f| !f.skip) {
                    out.push_str(&format!(
                        "let mut field_{}: ::std::option::Option<{}> = \
                         ::std::option::Option::None;\n",
                        f.name, f.ty
                    ));
                }
                out.push_str("for (key, value) in object {\nmatch key.as_str() {\n");
                for f in fields.iter().filter(|f| !f.skip) {
                    out.push_str(&format!(
                        "\"{fname}\" => {{ field_{fname} = ::std::option::Option::Some(\
                         ::serde::json::from_value(value).map_err({err})?); }}\n",
                        fname = f.name,
                        err = de_err(),
                    ));
                }
                // Unknown fields are ignored, like serde's default.
                out.push_str("_ => {}\n}\n}\n");
                out.push_str(&format!("::std::result::Result::Ok({name} {{\n"));
                for f in fields {
                    if f.skip {
                        out.push_str(&format!(
                            "{}: ::core::default::Default::default(),\n",
                            f.name
                        ));
                    } else if is_option_type(&f.ty) {
                        // Missing optional field deserializes as None.
                        out.push_str(&format!(
                            "{fname}: field_{fname}.unwrap_or_default(),\n",
                            fname = f.name
                        ));
                    } else {
                        out.push_str(&format!(
                            "{fname}: match field_{fname} {{\n\
                             ::std::option::Option::Some(v) => v,\n\
                             ::std::option::Option::None => return \
                             ::std::result::Result::Err({err}(\
                             \"missing field `{fname}`\")),\n}},\n",
                            fname = f.name,
                            err = de_err(),
                        ));
                    }
                }
                out.push_str("})");
                out
            }
        }
        Data::Enum { variants } => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                match &v.payload {
                    None => unit_arms.push_str(&format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n",
                        v = v.name
                    )),
                    Some(ty) => payload_arms.push_str(&format!(
                        "\"{v}\" => {{\nlet inner: {ty} = \
                         ::serde::json::from_value(value).map_err({err})?;\n\
                         ::std::result::Result::Ok({name}::{v}(inner))\n}}\n",
                        v = v.name,
                        err = de_err(),
                    )),
                }
            }
            let mut out = String::from(
                "let value = deserializer.take_json_value()?;\nmatch value {\n",
            );
            out.push_str(&format!(
                "::serde::json::Value::String(s) => match s.as_str() {{\n{unit_arms}\
                 other => ::std::result::Result::Err({err}(format!(\
                 \"unknown variant `{{other}}` of {name}\"))),\n}},\n",
                err = de_err(),
            ));
            if !payload_arms.is_empty() {
                out.push_str(&format!(
                    "::serde::json::Value::Object(fields) => {{\n\
                     let mut iter = fields.into_iter();\n\
                     match (iter.next(), iter.next()) {{\n\
                     (::std::option::Option::Some((key, value)), \
                     ::std::option::Option::None) => match key.as_str() {{\n{payload_arms}\
                     other => ::std::result::Result::Err({err}(format!(\
                     \"unknown variant `{{other}}` of {name}\"))),\n}},\n\
                     _ => ::std::result::Result::Err({err}(\
                     \"expected single-key object for {name} variant\")),\n}}\n}},\n",
                    err = de_err(),
                ));
            }
            out.push_str(&format!(
                "other => ::std::result::Result::Err({err}(format!(\
                 \"invalid value kind {{}} for {name}\", other.kind()))),\n}}",
                err = de_err(),
            ));
            out
        }
    };
    format!(
        "impl<'de{sep}{inner}> ::serde::Deserialize<'de> for {name}{type_args} {where_clause} {{\n\
         fn deserialize<D: ::serde::Deserializer<'de>>(deserializer: D) \
         -> ::std::result::Result<Self, D::Error> {{\n{body}\n}}\n}}\n",
        sep = if impl_generics_inner(&impl_generics).is_empty() {
            ""
        } else {
            ", "
        },
        inner = impl_generics_inner(&impl_generics),
    )
}

/// Strips the outer `<'de, ...>` added by [`impl_pieces`] back to its inner
/// list minus the leading `'de`, so `gen_deserialize` can re-wrap it.
fn impl_generics_inner(impl_generics: &str) -> &str {
    let inner = impl_generics
        .strip_prefix('<')
        .and_then(|s| s.strip_suffix('>'))
        .unwrap_or("");
    let inner = inner.strip_prefix("'de").unwrap_or(inner);
    inner.strip_prefix(", ").unwrap_or(inner).trim()
}

fn is_option_type(ty: &str) -> bool {
    let t = ty.trim_start();
    t.starts_with("Option")
        || t.starts_with("std :: option :: Option")
        || t.starts_with("core :: option :: Option")
        || t.starts_with(":: std :: option :: Option")
        || t.starts_with(":: core :: option :: Option")
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let code = gen_serialize(&parsed);
    code.parse()
        .unwrap_or_else(|e| panic!("serde_derive generated invalid code: {e}\n{code}"))
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let code = gen_deserialize(&parsed);
    code.parse()
        .unwrap_or_else(|e| panic!("serde_derive generated invalid code: {e}\n{code}"))
}
