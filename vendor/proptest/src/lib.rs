//! Offline vendored subset of the `proptest` API.
//!
//! Reproduces the macro and strategy surface the workspace's property tests
//! use: `proptest!` with `#![proptest_config(...)]`, `prop_compose!`,
//! weighted `prop_oneof!`, `Just`, `prop_map`, `any::<T>()`, integer range
//! strategies, tuple strategies, `collection::vec`, `option::weighted`, and
//! the `prop_assert*` / `prop_assume!` macros.
//!
//! Simplifications relative to real proptest: generation is seeded
//! deterministically from the test's module path (every run explores the
//! same cases — reproducible CI), there is no shrinking (a failing case
//! reports its values via the assertion message), and `.proptest-regressions`
//! files are ignored.

use std::marker::PhantomData;

// ---------------------------------------------------------------------------
// Deterministic generator
// ---------------------------------------------------------------------------

/// The RNG strategies draw from (xorshift64*, seeded from the test name).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary string (the test path), never zero.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h | 1,
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        // xorshift64*.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A float in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        self.next_u64() % bound
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A generator of values for property tests.
///
/// Object-safe core (`generate`), with sized combinators layered on top.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map {
            inner: self,
            f,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy yielding a constant (cloned) value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted union of boxed strategies (backs `prop_oneof!`).
pub struct Union<V> {
    options: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
    total: u64,
}

impl<V> Union<V> {
    /// Builds from `(weight, strategy)` pairs.
    pub fn new(options: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
        let total = options.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! with zero total weight");
        Union {
            options,
            total,
        }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (weight, strat) in &self.options {
            if pick < *weight as u64 {
                return strat.generate(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weights sum checked in Union::new")
    }
}

// ---------------------------------------------------------------------------
// Integer ranges and `any`
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Generates a uniformly random value over the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over a type's full domain; see [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T` (real proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

// ---------------------------------------------------------------------------
// Collections and options
// ---------------------------------------------------------------------------

/// Length specification for [`collection::vec`].
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    /// Inclusive lower bound.
    pub lo: usize,
    /// Inclusive upper bound.
    pub hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi: n,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{SizeRange, Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector whose elements come from `element` and whose length is
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::{Strategy, TestRng};

    /// Strategy for `Option<S::Value>`; see [`weighted`].
    pub struct WeightedOption<S> {
        some_probability: f64,
        inner: S,
    }

    /// `Some` with probability `some_probability`, else `None`.
    pub fn weighted<S: Strategy>(some_probability: f64, inner: S) -> WeightedOption<S> {
        assert!(
            (0.0..=1.0).contains(&some_probability),
            "probability out of range"
        );
        WeightedOption {
            some_probability,
            inner,
        }
    }

    impl<S: Strategy> Strategy for WeightedOption<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_f64() < self.some_probability {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
        }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the test fails.
    Fail(String),
    /// A `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// Drives the cases of one property test (used by the `proptest!` macro).
pub struct TestRunner {
    rng: TestRng,
    cases: u32,
    name: String,
}

impl TestRunner {
    /// Creates a runner for the named test.
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        TestRunner {
            rng: TestRng::from_name(name),
            cases: config.cases,
            name: name.to_string(),
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// The generator for the next case.
    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }

    /// Records a case result; panics (failing the `#[test]`) on `Fail`.
    pub fn finish_case(&self, result: Result<(), TestCaseError>, case: u32) {
        match result {
            Ok(()) | Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest {} failed at case {case}: {msg}", self.name)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Defines deterministic property tests over strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let runner_config: $crate::ProptestConfig = $config;
            let mut runner = $crate::TestRunner::new(
                runner_config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..runner.cases() {
                $(let $arg = $crate::Strategy::generate(&($strat), runner.rng());)*
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                runner.finish_case(__result, __case);
            }
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

/// Defines a function returning a composite strategy.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($outer:tt)*)
            ($($arg:ident in $strat:expr),* $(,)?) -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($outer)*) -> impl $crate::Strategy<Value = $ret> {
            $crate::Strategy::prop_map(
                ($($strat,)*),
                move |($($arg,)*)| $body,
            )
        }
    };
}

/// Weighted choice between strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {{
        let options: ::std::vec::Vec<(u32, ::std::boxed::Box<dyn $crate::Strategy<Value = _>>)> =
            vec![$(($weight as u32, ::std::boxed::Box::new($strat))),+];
        $crate::Union::new(options)
    }};
    ($($strat:expr),+ $(,)?) => {{
        let options: ::std::vec::Vec<(u32, ::std::boxed::Box<dyn $crate::Strategy<Value = _>>)> =
            vec![$((1u32, ::std::boxed::Box::new($strat))),+];
        $crate::Union::new(options)
    }};
}

/// Asserts inside a proptest body; fails the case with the values shown.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}` ({} != {})",
                left,
                right,
                stringify!($left),
                stringify!($right),
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                left,
                right,
                format!($($fmt)*),
            )));
        }
    }};
}

/// Skips the case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

pub mod prelude {
    //! The usual `use proptest::prelude::*;` imports.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_compose, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestCaseError,
    };
}
