//! `Serialize` / `Deserialize` for the std types the workspace uses.

use crate::de::{Deserialize, Deserializer, Error as DeError};
use crate::json::{from_object_key, from_value, to_value, Value};
use crate::ser::{Error as SerError, Serialize, Serializer};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::hash::Hash;

fn ser_err<S: Serializer>(msg: String) -> S::Error {
    <S::Error as SerError>::custom(msg)
}

fn de_err<'de, D: Deserializer<'de>>(msg: String) -> D::Error {
    <D::Error as DeError>::custom(msg)
}

// ---- integers -------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_json_value(Value::U64(*self as u64))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                match d.take_json_value()? {
                    Value::U64(n) => <$t>::try_from(n)
                        .map_err(|_| de_err::<D>(format!("{n} out of range"))),
                    Value::I64(n) => <$t>::try_from(n)
                        .map_err(|_| de_err::<D>(format!("{n} out of range"))),
                    other => Err(de_err::<D>(format!(
                        "expected integer, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_json_value(Value::I64(*self as i64))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                match d.take_json_value()? {
                    Value::U64(n) => <$t>::try_from(n)
                        .map_err(|_| de_err::<D>(format!("{n} out of range"))),
                    Value::I64(n) => <$t>::try_from(n)
                        .map_err(|_| de_err::<D>(format!("{n} out of range"))),
                    other => Err(de_err::<D>(format!(
                        "expected integer, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

// ---- floats, bool, strings ------------------------------------------------

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_json_value(Value::F64(*self))
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_json_value()? {
            Value::F64(x) => Ok(x),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            other => Err(de_err::<D>(format!("expected number, found {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_json_value(Value::F64(f64::from(*self)))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        f64::deserialize(d).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_json_value(Value::Bool(*self))
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_json_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(de_err::<D>(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_json_value(Value::String(self.clone()))
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        d.take_json_value()?.into_string().map_err(de_err::<D>)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_json_value(Value::String(self.to_string()))
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_json_value(Value::String(self.to_string()))
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let s = String::deserialize(d)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(de_err::<D>(format!("expected single char, found {s:?}"))),
        }
    }
}

// ---- containers -----------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            None => s.serialize_json_value(Value::Null),
            Some(v) => v.serialize(s),
        }
    }
}

impl<'de, T: for<'x> Deserialize<'x>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_json_value()? {
            Value::Null => Ok(None),
            v => from_value::<T>(v).map(Some).map_err(de_err::<D>),
        }
    }
}

fn seq_to_value<'a, T: Serialize + 'a, S: Serializer>(
    items: impl Iterator<Item = &'a T>,
) -> Result<Value, S::Error> {
    let mut out = Vec::new();
    for item in items {
        out.push(to_value(item).map_err(ser_err::<S>)?);
    }
    Ok(Value::Array(out))
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let v = seq_to_value::<T, S>(self.iter())?;
        s.serialize_json_value(v)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let v = seq_to_value::<T, S>(self.iter())?;
        s.serialize_json_value(v)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let v = seq_to_value::<T, S>(self.iter())?;
        s.serialize_json_value(v)
    }
}

impl<'de, T: for<'x> Deserialize<'x>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let items = d.take_json_value()?.into_array().map_err(de_err::<D>)?;
        if items.len() != N {
            return Err(de_err::<D>(format!(
                "expected array of {N}, found {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items
            .into_iter()
            .map(|v| from_value(v).map_err(de_err::<D>))
            .collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| de_err::<D>("array length mismatch".to_string()))
    }
}

impl<'de, T: for<'x> Deserialize<'x>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let items = d.take_json_value()?.into_array().map_err(de_err::<D>)?;
        items
            .into_iter()
            .map(|v| from_value(v).map_err(de_err::<D>))
            .collect()
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let v = seq_to_value::<T, S>(self.iter())?;
        s.serialize_json_value(v)
    }
}

impl<'de, T: for<'x> Deserialize<'x> + Ord> Deserialize<'de> for BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let items = d.take_json_value()?.into_array().map_err(de_err::<D>)?;
        items
            .into_iter()
            .map(|v| from_value(v).map_err(de_err::<D>))
            .collect()
    }
}

impl<T: Serialize + Eq + Hash + Ord> Serialize for HashSet<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        // Deterministic output: sort before writing.
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        let v = seq_to_value::<&T, S>(items.iter())?;
        s.serialize_json_value(v)
    }
}

impl<'de, T: for<'x> Deserialize<'x> + Eq + Hash> Deserialize<'de> for HashSet<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let items = d.take_json_value()?.into_array().map_err(de_err::<D>)?;
        items
            .into_iter()
            .map(|v| from_value(v).map_err(de_err::<D>))
            .collect()
    }
}

fn map_to_value<'a, K, V, S>(
    entries: impl Iterator<Item = (&'a K, &'a V)>,
) -> Result<Value, S::Error>
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    S: Serializer,
{
    let mut out = Vec::new();
    for (k, v) in entries {
        let key = to_value(k).map_err(ser_err::<S>)?.into_object_key();
        out.push((key, to_value(v).map_err(ser_err::<S>)?));
    }
    Ok(Value::Object(out))
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let v = map_to_value::<K, V, S>(self.iter())?;
        s.serialize_json_value(v)
    }
}

impl<'de, K, V> Deserialize<'de> for BTreeMap<K, V>
where
    K: for<'x> Deserialize<'x> + Ord,
    V: for<'x> Deserialize<'x>,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let fields = d.take_json_value()?.into_object().map_err(de_err::<D>)?;
        fields
            .into_iter()
            .map(|(k, v)| {
                Ok((
                    from_object_key(&k).map_err(de_err::<D>)?,
                    from_value(v).map_err(de_err::<D>)?,
                ))
            })
            .collect()
    }
}

impl<K: Serialize + Eq + Hash + Ord, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        // Deterministic output: sort by key before writing.
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        let mut out = Vec::new();
        for (k, v) in entries {
            let key = to_value(k).map_err(ser_err::<S>)?.into_object_key();
            out.push((key, to_value(v).map_err(ser_err::<S>)?));
        }
        s.serialize_json_value(Value::Object(out))
    }
}

impl<'de, K, V> Deserialize<'de> for HashMap<K, V>
where
    K: for<'x> Deserialize<'x> + Eq + Hash,
    V: for<'x> Deserialize<'x>,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let fields = d.take_json_value()?.into_object().map_err(de_err::<D>)?;
        fields
            .into_iter()
            .map(|(k, v)| {
                Ok((
                    from_object_key(&k).map_err(de_err::<D>)?,
                    from_value(v).map_err(de_err::<D>)?,
                ))
            })
            .collect()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        T::deserialize(d).map(Box::new)
    }
}

// ---- tuples ---------------------------------------------------------------

macro_rules! impl_tuple {
    ($len:literal; $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                let items = vec![
                    $(to_value(&self.$idx).map_err(ser_err::<S>)?),+
                ];
                s.serialize_json_value(Value::Array(items))
            }
        }
        impl<'de, $($t: for<'x> Deserialize<'x>),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let items = d.take_json_value()?.into_array().map_err(de_err::<D>)?;
                if items.len() != $len {
                    return Err(de_err::<D>(format!(
                        "expected array of {}, found {}", $len, items.len()
                    )));
                }
                let mut it = items.into_iter();
                Ok(($(
                    {
                        let _ = stringify!($t);
                        from_value(it.next().expect("length checked")).map_err(de_err::<D>)?
                    },
                )+))
            }
        }
    };
}

impl_tuple!(1; T0.0);
impl_tuple!(2; T0.0, T1.1);
impl_tuple!(3; T0.0, T1.1, T2.2);
impl_tuple!(4; T0.0, T1.1, T2.2, T3.3);
