//! The JSON value tree both halves of the vendored serde stack share.
//!
//! Real serde streams through a 29-method data model; this vendored subset
//! funnels everything through [`Value`]. `serde_json` (also vendored)
//! renders and parses the tree.

use crate::de::{Deserialize, Deserializer, Error as DeError};
use crate::ser::{Error as SerError, Serialize, Serializer};
use std::fmt;

/// An owned JSON document.
///
/// Objects keep insertion order (serialization order is declaration order,
/// matching serde's externally visible behavior for derived structs).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer (u64 covers every unsigned field in the workspace).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object, order-preserving.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "float",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// The object entries, or an error naming the actual kind.
    pub fn into_object(self) -> Result<Vec<(String, Value)>, String> {
        match self {
            Value::Object(fields) => Ok(fields),
            other => Err(format!("expected object, found {}", other.kind())),
        }
    }

    /// The array elements, or an error naming the actual kind.
    pub fn into_array(self) -> Result<Vec<Value>, String> {
        match self {
            Value::Array(items) => Ok(items),
            other => Err(format!("expected array, found {}", other.kind())),
        }
    }

    /// The string contents, or an error naming the actual kind.
    pub fn into_string(self) -> Result<String, String> {
        match self {
            Value::String(s) => Ok(s),
            other => Err(format!("expected string, found {}", other.kind())),
        }
    }

    /// Renders the key position of a JSON object member: strings verbatim,
    /// numbers as their decimal text, anything else as embedded JSON (real
    /// serde_json errors on those; embedding keeps the vendored stack total).
    pub fn into_object_key(self) -> String {
        match self {
            Value::String(s) => s,
            Value::U64(n) => n.to_string(),
            Value::I64(n) => n.to_string(),
            other => {
                let mut out = String::new();
                write_json(&other, &mut out, None, 0);
                out
            }
        }
    }
}

/// Serializes any value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, String> {
    value.serialize(ValueSerializer)
}

/// Deserializes any type out of a [`Value`] tree.
pub fn from_value<T: for<'de> Deserialize<'de>>(value: Value) -> Result<T, String> {
    T::deserialize(ValueDeserializer(value))
}

/// Re-parses text used as an object key into the type the map expects:
/// first as a bare string, then as embedded JSON (see
/// [`Value::into_object_key`]).
pub fn from_object_key<T: for<'de> Deserialize<'de>>(key: &str) -> Result<T, String> {
    match from_value(Value::String(key.to_string())) {
        Ok(v) => Ok(v),
        Err(first) => match crate::json::parse(key) {
            Ok(v) => from_value(v),
            Err(_) => Err(first),
        },
    }
}

impl SerError for String {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        msg.to_string()
    }
}

impl DeError for String {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        msg.to_string()
    }
}

/// The [`Serializer`] producing [`Value`] trees.
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = String;

    fn serialize_json_value(self, value: Value) -> Result<Value, String> {
        Ok(value)
    }
}

/// The [`Deserializer`] consuming [`Value`] trees.
pub struct ValueDeserializer(pub Value);

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = String;

    fn take_json_value(self) -> Result<Value, String> {
        Ok(self.0)
    }
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_json_value(self.clone())
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.take_json_value()
    }
}

// ---------------------------------------------------------------------------
// Rendering and parsing live here (rather than in the vendored serde_json)
// so `Value` can render object keys without a dependency cycle.
// ---------------------------------------------------------------------------

/// Writes `value` as JSON into `out`. With `indent = Some(width)` the output
/// is pretty-printed; `depth` is the current nesting level.
pub fn write_json(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(*x, out),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_json(v, out, indent, depth + 1);
            }
            if !fields.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        // `{}` prints the shortest text that round-trips, and integral
        // floats gain a ".0" so they re-parse as floats.
        let s = x.to_string();
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // Real JSON has no NaN/Inf; serde_json writes null.
        out.push_str("null");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document into a [`Value`].
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            ))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected character {:?} at byte {}",
                other as char, self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid utf-8 in number".to_string())?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        }
    }
}
