//! Deserialization half of the vendored serde API.

use crate::json::Value;
use std::fmt::Display;

/// Error constructor trait for deserializers (real serde's `de::Error`).
pub trait Error: Sized {
    /// Builds an error from a message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A type that can deserialize itself.
///
/// The lifetime parameter exists for signature compatibility with real
/// serde; the vendored data model is always owned.
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self` from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// The vendored deserializer: yields a complete owned [`Value`] tree.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// Produces the complete JSON value being deserialized.
    fn take_json_value(self) -> Result<Value, Self::Error>;
}
