//! Offline vendored subset of the `serde` API.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the handful of external crates the code depends on are vendored under
//! `vendor/` as minimal, API-compatible subsets. This crate reproduces the
//! parts of `serde` the workspace actually uses:
//!
//! * the [`Serialize`] / [`Deserialize`] traits with the real signatures
//!   (manual implementations in the workspace compile unchanged),
//! * [`Serializer`] / [`Deserializer`] traits reduced to a JSON-value data
//!   model ([`json::Value`]) instead of serde's full streaming model,
//! * `#[derive(Serialize, Deserialize)]` via the sibling `serde_derive`
//!   proc-macro (container attributes `transparent`, field attribute
//!   `skip`),
//! * implementations for the std types the workspace serializes.
//!
//! The simplification relative to real serde: serialization always goes
//! through an owned [`json::Value`] tree. That is entirely adequate for the
//! JSON-lines persistence and config round-tripping done here, and keeps
//! the vendored code small and auditable.

pub mod de;
pub mod json;
pub mod ser;

mod impls;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
