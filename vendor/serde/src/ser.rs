//! Serialization half of the vendored serde API.

use crate::json::Value;
use std::fmt::{self, Display};

/// Error constructor trait for serializers (real serde's `ser::Error`).
pub trait Error: Sized {
    /// Builds an error from a message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A type that can serialize itself.
///
/// The signature matches real serde, so manual implementations in the
/// workspace compile unchanged.
pub trait Serialize {
    /// Serializes `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// The vendored serializer: a single entry point taking a finished
/// [`Value`] tree, plus serde's `collect_str` convenience.
pub trait Serializer: Sized {
    /// Output of a successful serialization.
    type Ok;
    /// Error type.
    type Error: Error;

    /// Consumes a complete JSON value.
    fn serialize_json_value(self, value: Value) -> Result<Self::Ok, Self::Error>;

    /// Serializes the `Display` text of a value (used by `Prefix`).
    fn collect_str<T: Display + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error> {
        self.serialize_json_value(Value::String(value.to_string()))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        crate::json::write_json(self, &mut out, None, 0);
        f.write_str(&out)
    }
}
