//! Offline vendored subset of the `crossbeam` scoped-thread API.
//!
//! Wraps `std::thread::scope` (stable since 1.63) behind crossbeam's
//! `thread::scope` signature: the closure receives a spawn handle, spawned
//! closures receive the same handle (so they can spawn siblings), `scope`
//! returns `Result` and captures panics instead of propagating them.

pub mod thread {
    //! Scoped threads.

    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Boxed panic payload, as `std::thread::Result` uses.
    type Panic = Box<dyn Any + Send + 'static>;

    /// Spawn handle passed to the `scope` closure.
    ///
    /// `Copy` so spawned closures can capture it by value (crossbeam passes
    /// `&Scope`; call sites that ignore the argument compile with either).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives this scope so it can
        /// spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(scope)),
            }
        }
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread and returns its result, or the panic payload.
        pub fn join(self) -> Result<T, Panic> {
            self.inner.join()
        }
    }

    /// Runs `f` with a scope handle; all threads spawned in the scope are
    /// joined before this returns. A panic in `f` (including one propagated
    /// by an `expect` on a child's join) is returned as `Err`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Panic>
    where
        F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn spawn_and_join() {
            let data = vec![1u32, 2, 3];
            let total = super::scope(|s| {
                let handles: Vec<_> = data
                    .iter()
                    .map(|&n| s.spawn(move |_| n * 2))
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum::<u32>()
            })
            .expect("scope");
            assert_eq!(total, 12);
        }

        #[test]
        fn panic_becomes_err() {
            let result = super::scope(|s| {
                s.spawn(|_| panic!("boom")).join().expect("child")
            });
            assert!(result.is_err());
        }
    }
}
