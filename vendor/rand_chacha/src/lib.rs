//! Offline vendored `ChaCha8Rng` over the vendored `rand` core traits.
//!
//! A genuine ChaCha stream cipher core with 8 rounds (4 double-rounds),
//! 64-bit block counter, zero nonce. Deterministic for a given seed, which
//! is what the simulation pipeline requires; byte-compatibility with the
//! upstream `rand_chacha` word stream is not a goal.

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, seeded deterministically.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// 256-bit key as eight little-endian words.
    key: [u32; 8],
    /// Block counter.
    counter: u64,
    /// Current keystream block.
    block: [u32; 16],
    /// Next unconsumed word in `block`.
    next_word: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const ROUNDS: usize = 8;

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, start) in state.iter_mut().zip(input) {
            *word = word.wrapping_add(start);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.next_word = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            next_word: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.next_word >= 16 {
            self.refill();
        }
        let word = self.block[self.next_word];
        self.next_word += 1;
        word
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "streams from different seeds look identical");
    }

    #[test]
    fn gen_bool_in_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads={heads}");
    }
}
