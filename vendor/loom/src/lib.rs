//! Offline vendored subset of **loom**: a model checker for concurrent Rust.
//!
//! [`model`] runs a closure over and over, exploring every distinct
//! interleaving of the *scheduler-visible operations* it performs — thread
//! spawn/join, [`sync::Mutex`] lock/unlock, and [`sync::atomic`] accesses —
//! up to a preemption bound. All loom threads are real OS threads, but only
//! one runs at a time: each visible operation is a scheduling point where a
//! cooperative scheduler decides (and records) which thread proceeds, so
//! every execution is deterministic given its decision sequence and the
//! whole decision tree can be walked depth-first.
//!
//! Scope of the vendored subset (documented deviations from upstream loom):
//!
//! * **Sequential consistency only.** Every atomic access is modeled as
//!   `SeqCst` regardless of the `Ordering` passed; the checker explores
//!   interleavings, not weak-memory reorderings. A protocol proven here is
//!   proven against every thread schedule, not against every hardware
//!   memory model.
//! * **Preemption bounding.** Exploration is exhaustive up to
//!   `LOOM_MAX_PREEMPTIONS` involuntary context switches per execution
//!   (default 2, upstream loom's default). Empirically almost all
//!   concurrency bugs manifest within two preemptions.
//! * Threads must reach scheduling points to be preempted: a spin loop that
//!   performs no loom operation never yields and would hang the model. Use
//!   [`thread::yield_now`] in busy-wait loops.
//! * Primitives are usable only from inside a [`model`] closure (or a
//!   thread it spawned); `Mutex`/atomic values must not be shared across
//!   `model` invocations.
//!
//! Failure reporting: a panic on any interleaving (an assertion in the model
//! closure, an unjoined child panic, or a detected deadlock) propagates out
//! of [`model`], so `#[test] fn x() { loom::model(|| ...) }` fails exactly
//! when some interleaving violates the model's assertions.

mod sched;

pub mod thread;

pub mod sync;

use std::sync::Arc;

/// Explores every interleaving of `f`'s scheduler-visible operations (up to
/// the preemption bound) and panics if any execution panics or deadlocks.
///
/// Environment knobs:
/// * `LOOM_MAX_PREEMPTIONS` — involuntary-switch budget per execution
///   (default 2).
/// * `LOOM_MAX_EXECUTIONS` — abort the model (panic) if the tree exceeds
///   this many executions (default 200 000), as a runaway guard.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let max_preemptions = env_usize("LOOM_MAX_PREEMPTIONS", 2);
    let max_executions = env_usize("LOOM_MAX_EXECUTIONS", 200_000);
    let f = Arc::new(f);
    let mut stack: Vec<sched::BranchPoint> = Vec::new();
    let mut executions: usize = 0;
    loop {
        executions += 1;
        assert!(
            executions <= max_executions,
            "loom: model exceeded {max_executions} executions; \
             shrink the model or raise LOOM_MAX_EXECUTIONS"
        );
        let outcome = sched::run_one_execution(f.clone(), stack, max_preemptions);
        match outcome.failure {
            Some(sched::Failure::Deadlock) => panic!(
                "loom: deadlock detected after {executions} execution(s): \
                 every live thread is blocked"
            ),
            Some(sched::Failure::Panic(payload)) => std::panic::resume_unwind(payload),
            None => {}
        }
        stack = outcome.stack;
        // Depth-first advance: drop exhausted suffix decisions, bump the
        // deepest one with an untried alternative, replay that prefix.
        while let Some(top) = stack.last_mut() {
            if top.chosen + 1 < top.alternatives.len() {
                top.chosen += 1;
                break;
            }
            stack.pop();
        }
        if stack.is_empty() {
            break;
        }
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::{Arc, Mutex};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn deterministic_single_thread() {
        super::model(|| {
            let a = AtomicUsize::new(0);
            a.store(3, Ordering::SeqCst);
            assert_eq!(a.load(Ordering::SeqCst), 3);
        });
    }

    #[test]
    fn finds_lost_update() {
        // Classic torn read-modify-write: two threads doing load-then-store
        // lose an increment under some interleaving. The model must find it.
        let caught = catch_unwind(AssertUnwindSafe(|| {
            super::model(|| {
                let a = Arc::new(AtomicUsize::new(0));
                let handles: Vec<_> = (0..2)
                    .map(|_| {
                        let a = Arc::clone(&a);
                        super::thread::spawn(move || {
                            let v = a.load(Ordering::SeqCst);
                            a.store(v + 1, Ordering::SeqCst);
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().unwrap();
                }
                assert_eq!(a.load(Ordering::SeqCst), 2, "lost update");
            });
        }));
        assert!(caught.is_err(), "model must expose the lost update");
    }

    #[test]
    fn mutex_excludes_and_fetch_add_is_atomic() {
        super::model(|| {
            let m = Arc::new(Mutex::new(0u64));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let m = Arc::clone(&m);
                    super::thread::spawn(move || {
                        let mut g = m.lock().unwrap();
                        *g += 1;
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*m.lock().unwrap(), 2);
        });
    }

    #[test]
    fn deadlock_is_reported() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            super::model(|| {
                let a = Arc::new(Mutex::new(()));
                let b = Arc::new(Mutex::new(()));
                let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
                let h = super::thread::spawn(move || {
                    let _ga = a2.lock().unwrap();
                    let _gb = b2.lock().unwrap();
                });
                let _gb = b.lock().unwrap();
                let _ga = a.lock().unwrap();
                drop(_ga);
                drop(_gb);
                let _ = h.join();
            });
        }));
        assert!(caught.is_err(), "AB/BA lock order must deadlock somewhere");
    }

    #[test]
    fn child_panic_propagates_through_join() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            super::model(|| {
                let h = super::thread::spawn(|| panic!("child exploded"));
                let r = h.join();
                assert!(r.is_err());
                // Swallowing the payload is fine: the model itself passes.
            });
        }));
        assert!(caught.is_ok(), "joined panic is the caller's to handle");
    }
}
