//! The cooperative scheduler and depth-first schedule explorer.
//!
//! One [`Sched`] exists per *execution*. Every loom thread is an OS thread
//! that parks on the shared condvar until the scheduler hands it the baton
//! (`cur == my id`). Each scheduler-visible operation calls [`Sched::point`]
//! (or a blocking variant), where the next thread is chosen. Choices with
//! more than one alternative are recorded as [`BranchPoint`]s; the explorer
//! in `lib.rs` replays a recorded prefix and advances the deepest
//! unexhausted branch, which walks the full decision tree depth-first.
//!
//! Determinism argument: given a forced decision prefix, the execution is a
//! pure function of the model closure — thread ids are assigned in spawn
//! order, mutex ids in first-lock order, and only the chosen thread ever
//! runs — so the alternatives at each replayed decision are identical to
//! the recording run and the tree is explored soundly.

use std::any::Any;
use std::cell::RefCell;
use std::sync::{Arc, Condvar, Mutex as StdMutex, PoisonError};

pub(crate) type Payload = Box<dyn Any + Send + 'static>;

/// Panic payload used to unwind loom threads when an execution is being
/// torn down (deadlock or completed-with-failure); never user-visible.
pub(crate) struct AbortSentinel;

/// One recorded scheduling decision with more than one alternative.
#[derive(Clone, Debug)]
pub struct BranchPoint {
    /// Runnable thread ids at the decision, current-thread first.
    pub alternatives: Vec<usize>,
    /// Index into `alternatives` chosen on the most recent execution.
    pub chosen: usize,
}

/// Why an execution failed.
pub(crate) enum Failure {
    /// Some live thread set was entirely blocked.
    Deadlock,
    /// A thread panicked and the payload was never consumed by `join`.
    Panic(Payload),
}

/// What one execution produced: the (possibly grown) decision stack and an
/// optional failure.
pub(crate) struct Outcome {
    pub stack: Vec<BranchPoint>,
    pub failure: Option<Failure>,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum State {
    Runnable,
    BlockedMutex(usize),
    BlockedJoin(usize),
    Finished,
}

struct Inner {
    states: Vec<State>,
    /// Thread currently holding the baton.
    cur: usize,
    /// Count of multi-alternative decisions taken so far this execution.
    decision: usize,
    /// Involuntary context switches consumed this execution.
    preemptions: usize,
    max_preemptions: usize,
    /// Held flag per registered mutex.
    mutexes: Vec<bool>,
    /// Uncaught panic payload per thread, consumed by `join`.
    panics: Vec<Option<Payload>>,
    finished: usize,
    total: usize,
    abort: bool,
    deadlock: bool,
    /// Recorded decision stack (forced prefix + fresh growth).
    stack: Vec<BranchPoint>,
}

pub(crate) struct Sched {
    inner: StdMutex<Inner>,
    cv: Condvar,
    os_handles: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Sched>, usize)>> = const { RefCell::new(None) };
}

/// The scheduler + thread id of the calling loom thread.
pub(crate) fn ctx() -> (Arc<Sched>, usize) {
    CTX.with(|c| {
        c.borrow()
            .clone()
            .expect("loom primitive used outside loom::model")
    })
}

type Guard<'a> = std::sync::MutexGuard<'a, Inner>;

impl Sched {
    fn lock(&self) -> Guard<'_> {
        // Inner is only poisoned if a thread panicked *while holding it*,
        // which the scheduler never does on purpose; recover the data.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Chooses the next thread to run and updates `cur`, recording a branch
    /// point when more than one thread could have been chosen. Returns
    /// `false` when no thread is runnable (deadlock if any are blocked).
    fn choose_next(g: &mut Inner) -> bool {
        let mut runnable: Vec<usize> = (0..g.total)
            .filter(|&t| g.states[t] == State::Runnable)
            .collect();
        if runnable.is_empty() {
            return false;
        }
        // Current thread first, so the default (first-choice) path runs each
        // thread as long as it can — preemptions are the explored deviation,
        // not the baseline.
        let cur_runnable = g.states[g.cur] == State::Runnable;
        if cur_runnable {
            runnable.retain(|&t| t != g.cur);
            runnable.insert(0, g.cur);
        }
        let alternatives: Vec<usize> = if cur_runnable && g.preemptions >= g.max_preemptions {
            vec![g.cur]
        } else {
            runnable
        };
        let chosen = if alternatives.len() == 1 {
            alternatives[0]
        } else {
            let d = g.decision;
            g.decision += 1;
            if d < g.stack.len() {
                debug_assert_eq!(
                    g.stack[d].alternatives, alternatives,
                    "loom: nondeterministic replay — alternatives diverged at decision {d}"
                );
                g.stack[d].alternatives[g.stack[d].chosen]
            } else {
                g.stack.push(BranchPoint {
                    alternatives,
                    chosen: 0,
                });
                g.stack[d].alternatives[0]
            }
        };
        if cur_runnable && chosen != g.cur {
            g.preemptions += 1;
        }
        g.cur = chosen;
        true
    }

    fn abort_all(&self, g: &mut Inner, deadlock: bool) {
        g.abort = true;
        g.deadlock = g.deadlock || deadlock;
        self.cv.notify_all();
    }

    /// A voluntary scheduling point for the active thread: pick the next
    /// thread (possibly self) and wait for the baton to come back.
    pub(crate) fn point(self: &Arc<Self>, me: usize) {
        let mut g = self.lock();
        if g.abort {
            drop(g);
            std::panic::panic_any(AbortSentinel);
        }
        debug_assert_eq!(g.cur, me, "scheduling point from a parked thread");
        let ok = Self::choose_next(&mut g);
        debug_assert!(ok, "the caller itself is runnable");
        if g.cur != me {
            self.cv.notify_all();
            self.wait_for_baton(g, me);
        }
    }

    /// Marks the active thread blocked with `state`, hands the baton away,
    /// and waits until this thread is runnable and chosen again.
    fn block(self: &Arc<Self>, me: usize, state: State) {
        let mut g = self.lock();
        if g.abort {
            drop(g);
            std::panic::panic_any(AbortSentinel);
        }
        g.states[me] = state;
        if !Self::choose_next(&mut g) {
            // Everyone is blocked or finished: the model deadlocked.
            self.abort_all(&mut g, true);
            drop(g);
            std::panic::panic_any(AbortSentinel);
        }
        self.cv.notify_all();
        self.wait_for_baton(g, me);
    }

    fn wait_for_baton(self: &Arc<Self>, mut g: Guard<'_>, me: usize) {
        while g.cur != me && !g.abort {
            g = self
                .cv
                .wait(g)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if g.abort {
            drop(g);
            std::panic::panic_any(AbortSentinel);
        }
    }

    // ---- thread lifecycle --------------------------------------------------

    /// Registers a new loom thread; returns its id. Caller must be active.
    pub(crate) fn register_thread(&self) -> usize {
        let mut g = self.lock();
        let tid = g.total;
        g.total += 1;
        g.states.push(State::Runnable);
        g.panics.push(None);
        tid
    }

    pub(crate) fn push_os_handle(&self, h: std::thread::JoinHandle<()>) {
        self.os_handles
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(h);
    }

    /// Entry protocol for a freshly spawned loom thread: park until chosen.
    fn wait_for_start(self: &Arc<Self>, me: usize) -> bool {
        let mut g = self.lock();
        while g.cur != me && !g.abort {
            g = self
                .cv
                .wait(g)
                .unwrap_or_else(PoisonError::into_inner);
        }
        !g.abort
    }

    /// Exit protocol: mark finished, wake joiners, pass the baton on.
    fn finish(self: &Arc<Self>, me: usize, panic: Option<Payload>) {
        let mut g = self.lock();
        g.states[me] = State::Finished;
        g.finished += 1;
        g.panics[me] = panic;
        for t in 0..g.total {
            if g.states[t] == State::BlockedJoin(me) {
                g.states[t] = State::Runnable;
            }
        }
        if g.finished == g.total {
            // Execution complete; wake the orchestrator.
            self.cv.notify_all();
            return;
        }
        if Self::choose_next(&mut g) {
            self.cv.notify_all();
        } else if !g.abort {
            // Unfinished threads remain but none can run.
            self.abort_all(&mut g, true);
        }
    }

    /// Blocks until thread `tid` finishes; returns its panic payload if it
    /// panicked (consuming it, as `join` does).
    pub(crate) fn join_thread(self: &Arc<Self>, me: usize, tid: usize) -> Option<Payload> {
        self.point(me);
        loop {
            {
                let mut g = self.lock();
                if g.abort {
                    drop(g);
                    std::panic::panic_any(AbortSentinel);
                }
                if g.states[tid] == State::Finished {
                    return g.panics[tid].take();
                }
            }
            self.block(me, State::BlockedJoin(tid));
        }
    }

    // ---- mutex protocol ----------------------------------------------------

    pub(crate) fn register_mutex(&self) -> usize {
        let mut g = self.lock();
        let mid = g.mutexes.len();
        g.mutexes.push(false);
        mid
    }

    pub(crate) fn lock_mutex(self: &Arc<Self>, me: usize, mid: usize) {
        self.point(me);
        loop {
            {
                let mut g = self.lock();
                if g.abort {
                    drop(g);
                    std::panic::panic_any(AbortSentinel);
                }
                if !g.mutexes[mid] {
                    g.mutexes[mid] = true;
                    return;
                }
            }
            self.block(me, State::BlockedMutex(mid));
        }
    }

    pub(crate) fn unlock_mutex(self: &Arc<Self>, me: usize, mid: usize) {
        {
            let mut g = self.lock();
            g.mutexes[mid] = false;
            for t in 0..g.total {
                if g.states[t] == State::BlockedMutex(mid) {
                    g.states[t] = State::Runnable;
                }
            }
        }
        // Releasing is itself a visible event — but never a panic site when
        // the guard is dropped during an unwind (a panic inside a panic
        // aborts the process).
        if !std::thread::panicking() {
            self.point(me);
        }
    }
}

/// Spawns a loom thread running `body`, parking it until scheduled. Must be
/// called by the active thread (or the orchestrator for the root).
pub(crate) fn spawn_loom_thread<F>(sched: &Arc<Sched>, tid: usize, body: F)
where
    F: FnOnce() + Send + 'static,
{
    let sched2 = Arc::clone(sched);
    let handle = std::thread::Builder::new()
        .name(format!("loom-{tid}"))
        .spawn(move || {
            CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&sched2), tid)));
            if !sched2.wait_for_start(tid) {
                // Aborted before ever running.
                sched2.finish(tid, None);
                return;
            }
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body));
            let payload = match result {
                Ok(()) => None,
                Err(p) if p.is::<AbortSentinel>() => None,
                Err(p) => Some(p),
            };
            sched2.finish(tid, payload);
        })
        .expect("spawn loom thread");
    sched.push_os_handle(handle);
}

/// Runs one execution: replay `stack`'s forced prefix, record fresh
/// decisions beyond it, return the grown stack and any failure.
pub(crate) fn run_one_execution<F>(
    f: Arc<F>,
    stack: Vec<BranchPoint>,
    max_preemptions: usize,
) -> Outcome
where
    F: Fn() + Send + Sync + 'static,
{
    let sched = Arc::new(Sched {
        inner: StdMutex::new(Inner {
            states: vec![State::Runnable],
            cur: 0,
            decision: 0,
            preemptions: 0,
            max_preemptions,
            mutexes: Vec::new(),
            panics: vec![None],
            finished: 0,
            total: 1,
            abort: false,
            deadlock: false,
            stack,
        }),
        cv: Condvar::new(),
        os_handles: StdMutex::new(Vec::new()),
    });

    spawn_loom_thread(&sched, 0, move || f());

    // Wait for every loom thread to finish (deadlock teardown included:
    // abort wakes parked threads, which unwind via the sentinel and still
    // pass through `finish`).
    {
        let mut g = sched.lock();
        while g.finished < g.total {
            g = sched
                .cv
                .wait(g)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
    let handles: Vec<_> = std::mem::take(
        &mut *sched
            .os_handles
            .lock()
            .unwrap_or_else(PoisonError::into_inner),
    );
    for h in handles {
        let _ = h.join();
    }

    let mut g = sched.lock();
    let failure = if g.deadlock {
        Some(Failure::Deadlock)
    } else {
        g.panics
            .iter_mut()
            .find_map(Option::take)
            .map(Failure::Panic)
    };
    Outcome {
        stack: std::mem::take(&mut g.stack),
        failure,
    }
}
