//! Loom-scheduled threads: same shape as [`std::thread`], but every spawn,
//! join, and yield is a scheduling point explored by the model.

use crate::sched;

/// Handle to a loom thread; `join` blocks (at a scheduling point) until the
/// thread finishes and returns its value, or `Err` with the panic payload.
pub struct JoinHandle<T> {
    tid: usize,
    // Written exactly once by the child before it finishes; read after join
    // observes `Finished`, so the lock is never contended.
    result: std::sync::Arc<std::sync::Mutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    pub fn join(self) -> std::thread::Result<T> {
        let (sched, me) = sched::ctx();
        match sched.join_thread(me, self.tid) {
            Some(payload) => Err(payload),
            None => {
                let v = self
                    .result
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .take()
                    .expect("loom thread finished without a value or a panic");
                Ok(v)
            }
        }
    }
}

/// Spawns a loom thread. The closure starts parked and runs only when the
/// scheduler picks it, so spawn order alone never determines execution order.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (sched, me) = sched::ctx();
    let tid = sched.register_thread();
    let result = std::sync::Arc::new(std::sync::Mutex::new(None));
    let slot = std::sync::Arc::clone(&result);
    sched::spawn_loom_thread(&sched, tid, move || {
        let v = f();
        *slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(v);
    });
    // Spawning is a visible event: the scheduler may immediately run the
    // child instead of continuing here.
    sched.point(me);
    JoinHandle { tid, result }
}

/// A pure scheduling point: lets the model switch to another thread here.
/// Required inside busy-wait loops — a spin that never yields never gets
/// preempted and would hang the model.
pub fn yield_now() {
    let (sched, me) = sched::ctx();
    sched.point(me);
}
