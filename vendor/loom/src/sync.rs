//! Loom-instrumented synchronization primitives.
//!
//! Shapes mirror [`std::sync`]: code under test swaps `use std::sync::…` for
//! `use loom::sync::…` behind `#[cfg(loom)]` and compiles unchanged. Every
//! lock, unlock, and atomic access is a scheduling point; atomic accesses
//! are modeled as `SeqCst` regardless of the ordering passed (see crate
//! docs for the deviation list).

use crate::sched;

pub use std::sync::Arc;

/// A mutex whose lock/unlock are scheduling points and whose blocking is
/// mediated by the model scheduler (so lock cycles are reported as model
/// deadlocks instead of hanging the test).
pub struct Mutex<T> {
    /// Scheduler slot, registered on first lock (new() may run before the
    /// value is shared, and ids must be assigned in a replay-stable order —
    /// first-lock order is deterministic given a decision prefix).
    mid: std::sync::OnceLock<usize>,
    data: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
    /// `Some` until dropped; the std guard is released before the scheduler
    /// is told the mutex is free.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            mid: std::sync::OnceLock::new(),
            data: std::sync::Mutex::new(value),
        }
    }

    fn mid(&self) -> usize {
        *self
            .mid
            .get_or_init(|| sched::ctx().0.register_mutex())
    }

    pub fn lock(&self) -> std::sync::LockResult<MutexGuard<'_, T>> {
        let mid = self.mid();
        let (sched, me) = sched::ctx();
        sched.lock_mutex(me, mid);
        // Logical ownership is exclusive, so the std lock is uncontended.
        let inner = self
            .data
            .try_lock()
            .expect("loom Mutex: logical owner found the std lock held");
        Ok(MutexGuard {
            mutex: self,
            inner: Some(inner),
        })
    }

    pub fn into_inner(self) -> std::sync::LockResult<T> {
        Ok(self
            .data
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner))
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard live")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard live")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        let (sched, me) = sched::ctx();
        sched.unlock_mutex(me, self.mutex.mid());
    }
}

pub mod atomic {
    //! Atomics whose every access is a scheduling point, modeled `SeqCst`.

    use crate::sched;

    pub use std::sync::atomic::Ordering;

    const SC: Ordering = Ordering::SeqCst;

    fn point() {
        let (sched, me) = sched::ctx();
        sched.point(me);
    }

    macro_rules! int_atomic {
        ($name:ident, $std:ident, $int:ty) => {
            #[derive(Debug, Default)]
            pub struct $name(std::sync::atomic::$std);

            impl $name {
                pub const fn new(v: $int) -> Self {
                    Self(std::sync::atomic::$std::new(v))
                }

                pub fn load(&self, _order: Ordering) -> $int {
                    point();
                    self.0.load(SC)
                }

                pub fn store(&self, v: $int, _order: Ordering) {
                    point();
                    self.0.store(v, SC)
                }

                pub fn swap(&self, v: $int, _order: Ordering) -> $int {
                    point();
                    self.0.swap(v, SC)
                }

                pub fn fetch_add(&self, v: $int, _order: Ordering) -> $int {
                    point();
                    self.0.fetch_add(v, SC)
                }

                pub fn fetch_sub(&self, v: $int, _order: Ordering) -> $int {
                    point();
                    self.0.fetch_sub(v, SC)
                }

                pub fn fetch_max(&self, v: $int, _order: Ordering) -> $int {
                    point();
                    self.0.fetch_max(v, SC)
                }

                pub fn fetch_min(&self, v: $int, _order: Ordering) -> $int {
                    point();
                    self.0.fetch_min(v, SC)
                }

                pub fn compare_exchange(
                    &self,
                    current: $int,
                    new: $int,
                    _success: Ordering,
                    _failure: Ordering,
                ) -> Result<$int, $int> {
                    point();
                    self.0.compare_exchange(current, new, SC, SC)
                }

                pub fn into_inner(self) -> $int {
                    self.0.into_inner()
                }
            }
        };
    }

    int_atomic!(AtomicUsize, AtomicUsize, usize);
    int_atomic!(AtomicU64, AtomicU64, u64);
    int_atomic!(AtomicU32, AtomicU32, u32);

    #[derive(Debug, Default)]
    pub struct AtomicBool(std::sync::atomic::AtomicBool);

    impl AtomicBool {
        pub const fn new(v: bool) -> Self {
            Self(std::sync::atomic::AtomicBool::new(v))
        }

        pub fn load(&self, _order: Ordering) -> bool {
            point();
            self.0.load(SC)
        }

        pub fn store(&self, v: bool, _order: Ordering) {
            point();
            self.0.store(v, SC)
        }

        pub fn swap(&self, v: bool, _order: Ordering) -> bool {
            point();
            self.0.swap(v, SC)
        }

        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            _success: Ordering,
            _failure: Ordering,
        ) -> Result<bool, bool> {
            point();
            self.0.compare_exchange(current, new, SC, SC)
        }
    }
}
