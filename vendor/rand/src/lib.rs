//! Offline vendored subset of the `rand` 0.8 API.
//!
//! Reproduces exactly the surface the workspace uses: [`RngCore`],
//! [`SeedableRng::seed_from_u64`], [`Rng`] (`gen`, `gen_range`, `gen_bool`)
//! and [`seq::SliceRandom`] (`choose`, `choose_multiple`, `shuffle`).
//! Deterministic given the generator's seed, which is all the simulation
//! code relies on; byte-compatibility with upstream `rand` streams is not a
//! goal (no golden files depend on it).

/// The core of a random number generator.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let word = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator seedable from fixed-size entropy.
pub trait SeedableRng: Sized {
    /// Seed byte array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanded with SplitMix64 (the same
    /// scheme upstream rand uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types producible by [`Rng::gen`] (upstream's `Standard` distribution).
pub trait Standard: Sized {
    /// Samples a uniformly random value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty : $via:ident),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8: next_u32, u16: next_u32, u32: next_u32, u64: next_u64, usize: next_u64);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples a value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience methods on any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value (upstream's `Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniformly random value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Sequence sampling (upstream `rand::seq`).

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// `amount` distinct elements, in random order.
        fn choose_multiple<'a, R: RngCore + ?Sized>(
            &'a self,
            rng: &mut R,
            amount: usize,
        ) -> SliceChooseIter<'a, Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn choose_multiple<'a, R: RngCore + ?Sized>(
            &'a self,
            rng: &mut R,
            amount: usize,
        ) -> SliceChooseIter<'a, T> {
            let amount = amount.min(self.len());
            // Partial Fisher–Yates over an index vector.
            let mut indices: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..indices.len());
                indices.swap(i, j);
            }
            indices.truncate(amount);
            SliceChooseIter {
                slice: self,
                indices: indices.into_iter(),
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }

    /// Iterator over the elements picked by
    /// [`SliceRandom::choose_multiple`].
    pub struct SliceChooseIter<'a, T> {
        slice: &'a [T],
        indices: std::vec::IntoIter<usize>,
    }

    impl<'a, T> Iterator for SliceChooseIter<'a, T> {
        type Item = &'a T;

        fn next(&mut self) -> Option<&'a T> {
            self.indices.next().map(|i| &self.slice[i])
        }

        fn size_hint(&self) -> (usize, Option<usize>) {
            self.indices.size_hint()
        }
    }

    impl<T> ExactSizeIterator for SliceChooseIter<'_, T> {}
}
